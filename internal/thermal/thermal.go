// Package thermal simulates the temperature environment of the paper's six
// testing setups (Fig 2 and Fig 3): Chip 0 on the XUPVVH board sits under a
// heating pad and cooling fan driven by an Arduino-style bang-bang
// controller targeting 82 C; Chips 1-5 on Alveo U50 boards run passively
// and settle at their self-heating equilibrium. Fig 3 plots each chip's
// temperature over 24 hours at 5-second samples; this package regenerates
// those traces with a first-order thermal RC plant.
package thermal

import (
	"fmt"
	"math"
)

// Sample is one temperature measurement.
type Sample struct {
	// AtSec is the sample time in seconds from the start of the trace.
	AtSec float64
	// TempC is the measured (sensor) temperature.
	TempC float64
}

// BoardSetup describes one chip's thermal configuration.
type BoardSetup struct {
	// Name labels the trace ("Chip 0" ...).
	Name string
	// AmbientC is the lab ambient temperature.
	AmbientC float64
	// SelfHeatC is the steady-state rise above ambient from chip activity.
	SelfHeatC float64
	// Controlled enables the heating-pad/fan controller.
	Controlled bool
	// TargetC is the controller setpoint (82 C for Chip 0).
	TargetC float64
	// HeaterRiseC is the additional steady-state rise at full heater power.
	HeaterRiseC float64
	// FanDropC is the steady-state drop at full fan.
	FanDropC float64
	// TauSec is the plant's thermal time constant.
	TauSec float64
	// SensorNoiseC is the amplitude of the sensor's quantization/noise.
	SensorNoiseC float64
	// Seed makes the trace deterministic per chip.
	Seed uint64
}

// Validate reports setup errors.
func (b BoardSetup) Validate() error {
	if b.TauSec <= 0 {
		return fmt.Errorf("thermal: %s: TauSec must be positive", b.Name)
	}
	if b.Controlled && b.TargetC <= b.AmbientC {
		return fmt.Errorf("thermal: %s: target %.1fC not above ambient %.1fC", b.Name, b.TargetC, b.AmbientC)
	}
	return nil
}

// PaperSetups returns the six setups matching Fig 3: Chip 0 controlled at
// 82 C, Chips 1-5 passive at their measured steady temperatures.
func PaperSetups() []BoardSetup {
	passive := func(name string, steady float64, seed uint64) BoardSetup {
		return BoardSetup{
			Name: name, AmbientC: 26, SelfHeatC: steady - 26,
			TauSec: 300, SensorNoiseC: 0.35, Seed: seed,
		}
	}
	return []BoardSetup{
		{
			Name: "Chip 0", AmbientC: 26, SelfHeatC: 18, Controlled: true,
			TargetC: 82, HeaterRiseC: 55, FanDropC: 12,
			TauSec: 120, SensorNoiseC: 0.3, Seed: 0x7E40,
		},
		passive("Chip 1", 58, 0x7E41),
		passive("Chip 2", 55, 0x7E42),
		passive("Chip 3", 56, 0x7E43),
		passive("Chip 4", 54, 0x7E44),
		passive("Chip 5", 57, 0x7E45),
	}
}

// Simulate produces the temperature trace of one setup for the given
// duration, sampled every sampleEvery seconds (the paper samples every 5 s
// for 24 h). The simulation integrates a first-order plant at one-second
// steps: dT/dt = (equilibrium - T)/tau, where the equilibrium combines
// ambient drift, self-heating, and the controller's heater/fan state
// (bang-bang with 0.25 C hysteresis).
func Simulate(b BoardSetup, durationSec, sampleEvery float64) ([]Sample, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if durationSec <= 0 || sampleEvery <= 0 {
		return nil, fmt.Errorf("thermal: duration and sample interval must be positive")
	}

	temp := b.AmbientC + b.SelfHeatC // start at passive equilibrium
	heater, fan := false, false
	var samples []Sample
	nextSample := 0.0
	rngState := b.Seed

	for t := 0.0; t <= durationSec; t++ {
		// Slow diurnal ambient drift (+-0.8 C over 24 h) plus a faster
		// HVAC wobble.
		ambient := b.AmbientC +
			0.8*math.Sin(2*math.Pi*t/86400) +
			0.2*math.Sin(2*math.Pi*t/1800)

		if b.Controlled {
			switch {
			case temp < b.TargetC-0.25:
				heater, fan = true, false
			case temp > b.TargetC+0.25:
				heater, fan = false, true
			}
		}
		eq := ambient + b.SelfHeatC
		if heater {
			eq += b.HeaterRiseC
		}
		if fan {
			eq -= b.FanDropC
		}
		temp += (eq - temp) / b.TauSec

		if t >= nextSample {
			rngState = rngState*6364136223846793005 + 1442695040888963407
			noise := (float64(rngState>>33&0xFFFF)/0xFFFF - 0.5) * 2 * b.SensorNoiseC
			samples = append(samples, Sample{AtSec: t, TempC: temp + noise})
			nextSample += sampleEvery
		}
	}
	return samples, nil
}

// Stats summarizes a trace: mean, min, max, and the maximum absolute
// first-difference between consecutive samples (stability, the property
// the paper argues from Fig 3).
type Stats struct {
	Mean, Min, Max, MaxStep float64
	N                       int
}

// Summarize computes trace statistics.
func Summarize(samples []Sample) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	s := Stats{Min: samples[0].TempC, Max: samples[0].TempC, N: len(samples)}
	sum := 0.0
	for i, smp := range samples {
		sum += smp.TempC
		if smp.TempC < s.Min {
			s.Min = smp.TempC
		}
		if smp.TempC > s.Max {
			s.Max = smp.TempC
		}
		if i > 0 {
			step := math.Abs(smp.TempC - samples[i-1].TempC)
			if step > s.MaxStep {
				s.MaxStep = step
			}
		}
	}
	s.Mean = sum / float64(len(samples))
	return s
}
