package report

import (
	"fmt"
	"text/tabwriter"

	"hbmrd/internal/attack"
	"hbmrd/internal/defense"
)

// Templating renders the §8.1 templating comparison: the naive scan versus
// the channel-targeted strategy.
func Templating(naive, targeted attack.Result) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Strategy\tTemplates\tRows hammered\tPilot hammers\tCampaign hammers")
		fmt.Fprintf(w, "%s\t%d\t%d\t-\t%d\n",
			naive.Strategy, naive.TemplatesFound, naive.RowsHammered, naive.HammersSpent)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n",
			targeted.Strategy, targeted.TemplatesFound, targeted.RowsHammered,
			targeted.PilotHammers, targeted.DrainHammers)
		if naive.HammersSpent > 0 {
			fmt.Fprintf(w, "campaign hammers saved by targeting CH%d:\t%.1f%%\n",
				targeted.BestChannel,
				(1-float64(targeted.DrainHammers)/float64(naive.HammersSpent))*100)
		}
	})
}

// Defense renders the §8.2 uniform-vs-adaptive mitigation comparison.
func Defense(rep defense.CostReport) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Uniform threshold (worst row anywhere):\t%.0f activations\n", rep.GlobalThreshold)
		fmt.Fprintln(w, "Region\tAdaptive threshold\tMitigations/window")
		for _, r := range rep.Regions {
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\n", r.Label, r.Threshold, r.Rate)
		}
		fmt.Fprintf(w, "Uniform mitigations/window:\t%.0f\n", rep.UniformRate)
		fmt.Fprintf(w, "Adaptive mitigations/window:\t%.0f\n", rep.AdaptiveRate)
		fmt.Fprintf(w, "Adaptive savings:\t%.1f%%\n", rep.SavingsPercent)
	})
}
