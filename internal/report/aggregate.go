package report

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hbmrd/internal/query"
)

// AggregateTable renders a query aggregate as an aligned text table, the
// same presentation the figure renderers use - so a stored sweep queried
// through internal/query prints in the shape of the paper's artifacts
// without re-running the experiment. Column layout comes from the
// aggregate's own Table form (group-by columns, count, then the spec's
// reducers), so the table, the CSV form, and the cached JSON all present
// one deterministic result.
func AggregateTable(a *query.Aggregate) string {
	header, rows := a.Table()
	body := table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, strings.Join(header, "\t"))
		for _, r := range rows {
			fmt.Fprintln(w, strings.Join(r, "\t"))
		}
	})
	return fmt.Sprintf("sweep %s  kind %s  (%d records, %d matched)\n%s",
		a.Sweep, a.Kind, a.Records, a.Matched, body)
}
