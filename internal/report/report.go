// Package report renders experiment results in the shape of the paper's
// tables and figures: one renderer per artifact, producing aligned text
// tables (and CSV series where the figure is a curve). The renderers are
// pure functions over the core package's record types, so the same results
// can be printed by the CLI, the benchmarks, and EXPERIMENTS.md tooling.
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"hbmrd/internal/core"
	"hbmrd/internal/ecc"
	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
	"hbmrd/internal/stats"
	"hbmrd/internal/thermal"
	"hbmrd/internal/utrr"
)

// table builds an aligned text table.
func table(build func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	build(w)
	w.Flush()
	return sb.String()
}

func fmtDur(t hbm.TimePS) string {
	switch {
	case t >= hbm.MS:
		return fmt.Sprintf("%.1fms", float64(t)/float64(hbm.MS))
	case t >= hbm.US:
		return fmt.Sprintf("%.1fus", float64(t)/float64(hbm.US))
	default:
		return fmt.Sprintf("%.1fns", float64(t)/float64(hbm.NS))
	}
}

// Table1 renders the paper's Table 1 (data patterns).
func Table1() string {
	rows := core.Table1()
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Row Addresses\tRowstripe0\tRowstripe1\tCheckered0\tCheckered1")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t0x%02X\t0x%02X\t0x%02X\t0x%02X\n",
				r.Addresses, r.Bytes[0], r.Bytes[1], r.Bytes[2], r.Bytes[3])
		}
	})
}

// Table2 renders the paper's Table 2 (tested components per experiment).
func Table2() string {
	rows := core.Table2()
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Experiment Type\tRows (Per Bank)\tBanks\tPseudo Channels\tChannels")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n",
				r.Experiment, r.RowsPerBank, r.Banks, r.PseudoChannels, r.Channels)
		}
	})
}

// Fig3 renders per-chip temperature trace summaries (mean/min/max/max-step
// over the sampled window), the stability argument of Fig 3.
func Fig3(names []string, traces [][]thermal.Sample) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Chip\tSamples\tMean(C)\tMin(C)\tMax(C)\tMaxStep(C)")
		for i, name := range names {
			st := thermal.Summarize(traces[i])
			fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.2f\n",
				name, st.N, st.Mean, st.Min, st.Max, st.MaxStep)
		}
	})
}

// patternLabel renders the pattern column, with WCDP as its own label.
func patternLabel(p pattern.Pattern, wcdp bool) string {
	if wcdp {
		return "WCDP"
	}
	return p.String()
}

// Fig4 renders the BER distribution across chips per data pattern: one row
// per (chip, pattern) with the five-number box summary the figure plots.
func Fig4(recs []core.BERRecord) string {
	type key struct {
		chip  int
		label string
	}
	groups := map[key][]float64{}
	for _, r := range recs {
		k := key{r.Chip, patternLabel(r.Pattern, r.WCDP)}
		groups[k] = append(groups[k], r.BERPercent)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].chip != keys[j].chip {
			return keys[i].chip < keys[j].chip
		}
		return keys[i].label < keys[j].label
	})
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Chip\tPattern\tN\tMeanBER%\tMinBER%\tMedianBER%\tMaxBER%")
		for _, k := range keys {
			b := stats.Box(groups[k])
			fmt.Fprintf(w, "Chip %d\t%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\n",
				k.chip, k.label, b.N, b.Mean, b.Min, b.Median, b.Max)
		}
	})
}

// Fig5 renders the HCfirst distribution across chips per data pattern.
func Fig5(recs []core.HCFirstRecord) string {
	type key struct {
		chip  int
		label string
	}
	groups := map[key][]float64{}
	for _, r := range recs {
		if !r.Found {
			continue
		}
		k := key{r.Chip, patternLabel(r.Pattern, r.WCDP)}
		groups[k] = append(groups[k], float64(r.HCFirst))
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].chip != keys[j].chip {
			return keys[i].chip < keys[j].chip
		}
		return keys[i].label < keys[j].label
	})
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Chip\tPattern\tN\tMinHC\tMedianHC\tMeanHC\tMaxHC")
		for _, k := range keys {
			b := stats.Box(groups[k])
			fmt.Fprintf(w, "Chip %d\t%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
				k.chip, k.label, b.N, b.Min, b.Median, b.Mean, b.Max)
		}
	})
}

// Fig6 renders BER across channels within each chip (WCDP records), the
// die-pair structure of Fig 6.
func Fig6(recs []core.BERRecord) string {
	type key struct{ chip, ch int }
	groups := map[key][]float64{}
	for _, r := range recs {
		if !r.WCDP {
			continue
		}
		groups[key{r.Chip, r.Channel}] = append(groups[key{r.Chip, r.Channel}], r.BERPercent)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].chip != keys[j].chip {
			return keys[i].chip < keys[j].chip
		}
		return keys[i].ch < keys[j].ch
	})
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Chip\tChannel\tN\tMeanBER%\tMinBER%\tMaxBER%")
		for _, k := range keys {
			b := stats.Box(groups[k])
			fmt.Fprintf(w, "Chip %d\tCH%d\t%d\t%.3f\t%.3f\t%.3f\n", k.chip, k.ch, b.N, b.Mean, b.Min, b.Max)
		}
	})
}

// Fig7 renders HCfirst across channels within each chip (WCDP records).
func Fig7(recs []core.HCFirstRecord) string {
	type key struct{ chip, ch int }
	groups := map[key][]float64{}
	for _, r := range recs {
		if !r.WCDP || !r.Found {
			continue
		}
		groups[key{r.Chip, r.Channel}] = append(groups[key{r.Chip, r.Channel}], float64(r.HCFirst))
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].chip != keys[j].chip {
			return keys[i].chip < keys[j].chip
		}
		return keys[i].ch < keys[j].ch
	})
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Chip\tChannel\tN\tMinHC\tMedianHC\tMaxHC")
		for _, k := range keys {
			b := stats.Box(groups[k])
			fmt.Fprintf(w, "Chip %d\tCH%d\t%d\t%.0f\t%.0f\t%.0f\n", k.chip, k.ch, b.N, b.Min, b.Median, b.Max)
		}
	})
}

// Fig8CSV renders the per-row BER series of Fig 8 as CSV (row, then one
// column per channel), with discovered subarray boundaries appended as
// comments.
func Fig8CSV(recs []core.BERRecord, boundaries []int) string {
	channels := map[int]bool{}
	type key struct{ row, ch int }
	vals := map[key]float64{}
	rows := map[int]bool{}
	for _, r := range recs {
		if !r.WCDP {
			continue
		}
		channels[r.Channel] = true
		rows[r.Row] = true
		vals[key{r.Row, r.Channel}] = r.BERPercent
	}
	chList := make([]int, 0, len(channels))
	for c := range channels {
		chList = append(chList, c)
	}
	sort.Ints(chList)
	rowList := make([]int, 0, len(rows))
	for r := range rows {
		rowList = append(rowList, r)
	}
	sort.Ints(rowList)

	var sb strings.Builder
	sb.WriteString("row")
	for _, c := range chList {
		fmt.Fprintf(&sb, ",CH%d_BER%%", c)
	}
	sb.WriteString("\n")
	for _, row := range rowList {
		fmt.Fprintf(&sb, "%d", row)
		for _, c := range chList {
			fmt.Fprintf(&sb, ",%.4f", vals[key{row, c}])
		}
		sb.WriteString("\n")
	}
	for _, b := range boundaries {
		fmt.Fprintf(&sb, "# subarray boundary at physical row %d\n", b)
	}
	return sb.String()
}

// Fig9 renders the per-bank (mean BER, CV) scatter of Fig 9.
func Fig9(recs []core.BERRecord) string {
	type key struct{ chip, ch, pc, bank int }
	groups := map[key][]float64{}
	for _, r := range recs {
		if !r.WCDP {
			continue
		}
		k := key{r.Chip, r.Channel, r.Pseudo, r.Bank}
		groups[k] = append(groups[k], r.BERPercent)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		switch {
		case a.chip != b.chip:
			return a.chip < b.chip
		case a.ch != b.ch:
			return a.ch < b.ch
		case a.pc != b.pc:
			return a.pc < b.pc
		default:
			return a.bank < b.bank
		}
	})
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Chip\tChannel\tPC\tBank\tMeanBER%\tCV")
		for _, k := range keys {
			xs := groups[k]
			fmt.Fprintf(w, "Chip %d\tCH%d\t%d\t%d\t%.3f\t%.3f\n",
				k.chip, k.ch, k.pc, k.bank, stats.Mean(xs), stats.CV(xs))
		}
	})
}

// Fig10 renders the aging summary (row counts and ratio percentiles).
func Fig10(s core.AgingSummary) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Rows with higher BER after aging:\t%d\n", s.RowsUp)
		fmt.Fprintf(w, "Rows with lower BER after aging:\t%d\n", s.RowsDown)
		fmt.Fprintf(w, "Rows unchanged:\t%d\n", s.RowsEqual)
		fmt.Fprintln(w, "Percentile\tNew/Old (rows up)\tOld/New (rows down)")
		for i, p := range s.Percentiles {
			fmt.Fprintf(w, "P%.0f\t%.3f\t%.3f\n", p, s.UpRatioPercentiles[i], s.DownRatioPercentiles[i])
		}
	})
}

// Fig11 renders the distribution of HCk normalized to HCfirst per pattern.
func Fig11(recs []core.HCNthRecord) string {
	maxK := 0
	for _, r := range recs {
		if r.Found && len(r.HC) > maxK {
			maxK = len(r.HC)
		}
	}
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Pattern\tFlip#\tN\tMeanHC/HC1\tMinHC/HC1\tMedian\tMaxHC/HC1")
		for _, p := range pattern.All() {
			for k := 0; k < maxK; k++ {
				var xs []float64
				for _, r := range recs {
					if r.Pattern != p || !r.Found || len(r.HC) <= k {
						continue
					}
					xs = append(xs, float64(r.HC[k])/float64(r.HC[0]))
				}
				if len(xs) == 0 {
					continue
				}
				b := stats.Box(xs)
				fmt.Fprintf(w, "%s\tHC%d\t%d\t%.3f\t%.3f\t%.3f\t%.3f\n",
					p, k+1, b.N, b.Mean, b.Min, b.Median, b.Max)
			}
		}
	})
}

// Fig12 renders the per-chip Pearson correlations and trend fits.
func Fig12(statsList []core.Fig12Stats) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Chip\tRows\tPearson(HC1, extra-to-10th)\tTrend c0\tc1\tc2")
		for _, s := range statsList {
			if len(s.PolyCoef) == 3 {
				fmt.Fprintf(w, "Chip %d\t%d\t%.3f\t%.3g\t%.3g\t%.3g\n",
					s.Chip, s.N, s.Pearson, s.PolyCoef[0], s.PolyCoef[1], s.PolyCoef[2])
			} else {
				fmt.Fprintf(w, "Chip %d\t%d\t%.3f\t-\t-\t-\n", s.Chip, s.N, s.Pearson)
			}
		}
	})
}

// Fig13 renders the max/min HCfirst ratio percentiles across rows.
func Fig13(recs []core.VariabilityRecord) string {
	var ratios []float64
	for _, r := range recs {
		if r.MeasuredRatios {
			ratios = append(ratios, r.Ratio())
		}
	}
	ps := []float64{1, 5, 10, 25, 50, 75, 90, 95, 99}
	vals := stats.Percentiles(ratios, ps)
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Rows measured:\t%d\n", len(ratios))
		fmt.Fprintln(w, "Percentile\tMaxHC/MinHC")
		for i, p := range ps {
			fmt.Fprintf(w, "P%.0f\t%.3f\n", p, vals[i])
		}
		fmt.Fprintf(w, "Max\t%.3f\n", stats.Max(ratios))
	})
}

// Fig14 renders mean BER per (chip, channel) across the tAggON sweep.
func Fig14(recs []core.RowPressBERRecord) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Chip\tChannel\ttAggON\tBER%\tRetentionBER%")
		for _, r := range recs {
			fmt.Fprintf(w, "Chip %d\tCH%d\t%s\t%.4f\t%.4f\n",
				r.Chip, r.Channel, fmtDur(r.TAggON), r.BERPercent, r.RetentionBERPercent)
		}
	})
}

// Fig15 renders average and minimum HCfirst per tAggON across all chips
// (the paper: 83689 (29183), 1519 (335), 376 (123), 1 (1)), restricted to
// rows that flip within the refresh window at every tAggON.
func Fig15(recs []core.RowPressHCRecord) string {
	// Identify rows eligible at every tAggON.
	type rowKey struct{ chip, ch, row int }
	counts := map[rowKey]int{}
	tons := map[hbm.TimePS]bool{}
	for _, r := range recs {
		tons[r.TAggON] = true
		if r.Found && r.WithinWindow {
			counts[rowKey{r.Chip, r.Channel, r.Row}]++
		}
	}
	need := len(tons)
	byTon := map[hbm.TimePS][]float64{}
	for _, r := range recs {
		if !r.Found || counts[rowKey{r.Chip, r.Channel, r.Row}] != need {
			continue
		}
		byTon[r.TAggON] = append(byTon[r.TAggON], float64(r.HCFirst))
	}
	tonList := make([]hbm.TimePS, 0, len(byTon))
	for t := range byTon {
		tonList = append(tonList, t)
	}
	sort.Slice(tonList, func(i, j int) bool { return tonList[i] < tonList[j] })
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "tAggON\tRows\tAvg HCfirst\tMin HCfirst")
		for _, t := range tonList {
			xs := byTon[t]
			fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\n", fmtDur(t), len(xs), stats.Mean(xs), stats.Min(xs))
		}
	})
}

// Fig16 renders the bypass BER distribution per (dummy count, aggressor
// activation count).
func Fig16(recs []core.BypassRecord) string {
	type key struct{ dummies, agg int }
	groups := map[key][]float64{}
	for _, r := range recs {
		groups[key{r.Dummies, r.AggActs}] = append(groups[key{r.Dummies, r.AggActs}], r.BERPercent)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dummies != keys[j].dummies {
			return keys[i].dummies < keys[j].dummies
		}
		return keys[i].agg < keys[j].agg
	})
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Dummies\tAggACTs/tREFI\tRows\tMeanBER%\tMaxBER%")
		for _, k := range keys {
			xs := groups[k]
			fmt.Fprintf(w, "%d\t%d\t%d\t%.4f\t%.4f\n", k.dummies, k.agg, len(xs), stats.Mean(xs), stats.Max(xs))
		}
	})
}

// Fig17 renders the word-level flip histogram and the SECDED outcome.
func Fig17(hists map[pattern.Pattern]*ecc.FlipHistogram) string {
	pats := make([]pattern.Pattern, 0, len(hists))
	for p := range hists {
		pats = append(pats, p)
	}
	sort.Slice(pats, func(i, j int) bool { return pats[i] < pats[j] })
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Pattern\t1 flip\t2\t3\t4\t5\t6\t7\t>7\tMaxFlips\tSECDED corrected\tdetected\tescaped")
		for _, p := range pats {
			h := hists[p]
			out := ecc.ClassifySECDED(*h)
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				p, h.PerCount[0], h.PerCount[1], h.PerCount[2], h.PerCount[3],
				h.PerCount[4], h.PerCount[5], h.PerCount[6], h.Over7, h.MaxFlips,
				out.Corrected, out.Detected, out.Escaped)
		}
	})
}

// Retention renders the §6 retention-BER baselines (the failures the
// RowPress analysis subtracts): after waits of 34.8 ms, 1.17 s and 10.53 s
// the paper measures 0%, 0.013% and 0.134%.
func Retention(waits []hbm.TimePS, bers []float64) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Unrefreshed wait\tRetention BER%")
		for i := range waits {
			fmt.Fprintf(w, "%s\t%.4f\n", fmtDur(waits[i]), bers[i]*100)
		}
	})
}

// UTRR renders the uncovered TRR mechanism (§7, Obsv 20-23).
func UTRR(f utrr.Findings) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "TRR-capable REF cadence (Obsv 20):\tevery %d REFs\n", f.Period)
		fmt.Fprintf(w, "Refreshes both adjacent rows (Obsv 21):\t%v\n", f.RefreshesBothNeighbors)
		fmt.Fprintf(w, "First ACT after TRR-capable REF identified (Obsv 22):\t%v\n", f.FirstActIdentified)
		fmt.Fprintf(w, "Per-window identification threshold (Obsv 23):\t%d activations\n", f.IdentifyThreshold)
	})
}
