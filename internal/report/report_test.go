package report

import (
	"strings"
	"testing"

	"hbmrd/internal/core"
	"hbmrd/internal/ecc"
	"hbmrd/internal/hbm"
	"hbmrd/internal/pattern"
	"hbmrd/internal/thermal"
	"hbmrd/internal/utrr"
)

func TestTable1ContainsPatternBytes(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Rowstripe0", "Checkered1", "0x55", "0xAA", "0xFF", "Victim (V)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ContainsComponentCounts(t *testing.T) {
	out := Table2()
	for _, want := range []string{"RowHammer BER", "16384", "3072", "RowPress HCfirst"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q", want)
		}
	}
}

func TestFig3(t *testing.T) {
	setups := thermal.PaperSetups()[:2]
	var names []string
	var traces [][]thermal.Sample
	for _, s := range setups {
		tr, err := thermal.Simulate(s, 600, 5)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, s.Name)
		traces = append(traces, tr)
	}
	out := Fig3(names, traces)
	if !strings.Contains(out, "Chip 0") || !strings.Contains(out, "MaxStep") {
		t.Errorf("Fig3 output malformed:\n%s", out)
	}
}

func TestFig4AndFig6(t *testing.T) {
	recs := []core.BERRecord{
		{Chip: 0, Channel: 0, Pattern: pattern.Checkered0, BERPercent: 1.0},
		{Chip: 0, Channel: 0, Pattern: pattern.Checkered0, WCDP: true, BERPercent: 1.0},
		{Chip: 0, Channel: 1, Pattern: pattern.Rowstripe0, BERPercent: 0.5},
		{Chip: 5, Channel: 0, Pattern: pattern.Checkered0, BERPercent: 0.6},
	}
	out4 := Fig4(recs)
	if !strings.Contains(out4, "WCDP") || !strings.Contains(out4, "Chip 5") {
		t.Errorf("Fig4 missing groups:\n%s", out4)
	}
	out6 := Fig6(recs)
	if !strings.Contains(out6, "CH0") {
		t.Errorf("Fig6 missing channel rows:\n%s", out6)
	}
}

func TestFig5AndFig7(t *testing.T) {
	recs := []core.HCFirstRecord{
		{Chip: 0, Channel: 0, Pattern: pattern.Checkered0, HCFirst: 20000, Found: true},
		{Chip: 0, Channel: 0, Pattern: pattern.Checkered0, WCDP: true, HCFirst: 20000, Found: true},
		{Chip: 0, Channel: 2, Pattern: pattern.Rowstripe1, HCFirst: 90000, Found: true},
		{Chip: 1, Channel: 0, Pattern: pattern.Rowstripe1, Found: false},
	}
	if out := Fig5(recs); !strings.Contains(out, "20000") {
		t.Errorf("Fig5 missing values:\n%s", out)
	}
	if out := Fig7(recs); !strings.Contains(out, "CH0") {
		t.Errorf("Fig7 missing channel rows:\n%s", out)
	}
}

func TestFig8CSV(t *testing.T) {
	recs := []core.BERRecord{
		{Chip: 0, Channel: 0, Row: 10, WCDP: true, BERPercent: 1.5},
		{Chip: 0, Channel: 1, Row: 10, WCDP: true, BERPercent: 0.7},
		{Chip: 0, Channel: 0, Row: 11, WCDP: true, BERPercent: 1.4},
	}
	out := Fig8CSV(recs, []int{832})
	if !strings.HasPrefix(out, "row,CH0_BER%,CH1_BER%") {
		t.Errorf("Fig8 CSV header wrong:\n%s", out)
	}
	if !strings.Contains(out, "# subarray boundary at physical row 832") {
		t.Error("Fig8 CSV missing boundary comment")
	}
	if !strings.Contains(out, "10,1.5000,0.7000") {
		t.Errorf("Fig8 CSV rows wrong:\n%s", out)
	}
}

func TestFig9(t *testing.T) {
	recs := []core.BERRecord{
		{Chip: 0, Channel: 0, Bank: 0, Row: 1, WCDP: true, BERPercent: 1.0},
		{Chip: 0, Channel: 0, Bank: 0, Row: 2, WCDP: true, BERPercent: 1.4},
		{Chip: 0, Channel: 0, Bank: 1, Row: 1, WCDP: true, BERPercent: 0.8},
	}
	out := Fig9(recs)
	if !strings.Contains(out, "CV") || !strings.Contains(out, "Bank") {
		t.Errorf("Fig9 malformed:\n%s", out)
	}
}

func TestFig10(t *testing.T) {
	s := core.SummarizeAging([]core.AgingRecord{
		{OldBERPercent: 1, NewBERPercent: 2},
		{OldBERPercent: 2, NewBERPercent: 1},
		{OldBERPercent: 1, NewBERPercent: 1},
	})
	out := Fig10(s)
	if !strings.Contains(out, "higher BER after aging:  1") && !strings.Contains(out, "higher BER after aging") {
		t.Errorf("Fig10 malformed:\n%s", out)
	}
}

func TestFig11And12(t *testing.T) {
	recs := []core.HCNthRecord{
		{Chip: 0, Row: 1, Pattern: pattern.Checkered0, Found: true,
			HC: []int{100, 110, 120, 130, 140, 150, 160, 170, 180, 190}},
		{Chip: 0, Row: 2, Pattern: pattern.Checkered0, Found: true,
			HC: []int{200, 210, 215, 220, 225, 230, 235, 240, 245, 250}},
		{Chip: 0, Row: 3, Pattern: pattern.Checkered0, Found: true,
			HC: []int{300, 301, 302, 303, 304, 305, 306, 307, 308, 309}},
	}
	out11 := Fig11(recs)
	if !strings.Contains(out11, "HC10") {
		t.Errorf("Fig11 missing HC10 row:\n%s", out11)
	}
	st, err := core.ComputeFig12(recs)
	if err != nil {
		t.Fatal(err)
	}
	out12 := Fig12(st)
	if !strings.Contains(out12, "Pearson") {
		t.Errorf("Fig12 malformed:\n%s", out12)
	}
}

func TestFig13(t *testing.T) {
	out := Fig13([]core.VariabilityRecord{
		{MinHC: 100, MaxHC: 109, MeasuredRatios: true},
		{MinHC: 100, MaxHC: 220, MeasuredRatios: true},
		{MeasuredRatios: false},
	})
	if !strings.Contains(out, "Rows measured:  2") && !strings.Contains(out, "Rows measured") {
		t.Errorf("Fig13 malformed:\n%s", out)
	}
}

func TestFig14And15(t *testing.T) {
	out14 := Fig14([]core.RowPressBERRecord{
		{Chip: 0, Channel: 0, TAggON: 29 * hbm.NS, BERPercent: 0.08},
		{Chip: 0, Channel: 0, TAggON: 35_100 * hbm.NS, BERPercent: 50.3, RetentionBERPercent: 0.134},
	})
	if !strings.Contains(out14, "35.1us") || !strings.Contains(out14, "29.0ns") {
		t.Errorf("Fig14 malformed:\n%s", out14)
	}
	out15 := Fig15([]core.RowPressHCRecord{
		{Chip: 0, Channel: 0, Row: 1, TAggON: 29 * hbm.NS, HCFirst: 80000, Found: true, WithinWindow: true},
		{Chip: 0, Channel: 0, Row: 1, TAggON: 16 * hbm.MS, HCFirst: 1, Found: true, WithinWindow: true},
	})
	if !strings.Contains(out15, "16.0ms") {
		t.Errorf("Fig15 malformed:\n%s", out15)
	}
}

func TestFig16(t *testing.T) {
	out := Fig16([]core.BypassRecord{
		{Dummies: 3, AggActs: 18, BERPercent: 0},
		{Dummies: 4, AggActs: 18, BERPercent: 0.02},
		{Dummies: 4, AggActs: 34, BERPercent: 0.06},
	})
	if !strings.Contains(out, "Dummies") || !strings.Contains(out, "0.0600") {
		t.Errorf("Fig16 malformed:\n%s", out)
	}
}

func TestFig17(t *testing.T) {
	h := &ecc.FlipHistogram{}
	h.PerCount = [7]int{5, 3, 1, 0, 0, 0, 0}
	h.Over7 = 2
	h.MaxFlips = 16
	out := Fig17(map[pattern.Pattern]*ecc.FlipHistogram{pattern.Checkered0: h})
	if !strings.Contains(out, "Checkered0") || !strings.Contains(out, "16") {
		t.Errorf("Fig17 malformed:\n%s", out)
	}
}

func TestUTRRReport(t *testing.T) {
	out := UTRR(utrr.Findings{Period: 17, RefreshesBothNeighbors: true, FirstActIdentified: true, IdentifyThreshold: 5})
	for _, want := range []string{"every 17 REFs", "Obsv 21", "Obsv 22", "5 activations"} {
		if !strings.Contains(out, want) {
			t.Errorf("UTRR report missing %q:\n%s", want, out)
		}
	}
}
