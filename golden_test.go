package hbmrd_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"testing"

	"hbmrd"
)

// The fault model's determinism contract says the per-cell hash stream is
// the spec: optimizations may reorder evaluation but must leave every
// sweep's record stream byte-identical. This test enforces the contract in
// CI by hashing the full JSON record stream of a small multi-preset sweep
// (BER + HCfirst + retention) and pinning the digest. The same sweep runs
// with -jobs 1, 2 and 8 and must digest identically regardless of worker
// count (the engine emits records in plan order by construction).
//
// The pinned digests were produced by the pre-optimization scalar kernel
// (commit 2e63887); any model or device change that alters them is a
// behaviour change, not a refactor, and needs a deliberate re-pin with an
// explanation in the commit message.
var goldenSweepDigests = map[string]string{
	"HBM2_8Gb":   "fde3b7d82bb2d843ffe9f26d91b6e21502b33fece7b12cb22a2b637a8c7a1aa4",
	"HBM2E_16Gb": "904de82bfacedc58ce3d9cb39799207aa0fc8cbfeac98a47d8f220c51d6fdfdd",
	"HBM3_16Gb":  "ec8803efe514260f8139321970859c4634c59f51720e430768de36ff52f80a64",
}

// goldenSweep runs the digest workload for one preset at one worker count
// and feeds every record, in order, into h.
func goldenSweep(t *testing.T, preset hbmrd.GeometryPreset, jobs int, h hash.Hash) {
	t.Helper()
	fleet, err := hbmrd.NewFleet([]int{0, 5}, hbmrd.WithGeometry(preset), hbmrd.WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(h)
	record := func(stream string, rec any) {
		fmt.Fprintf(h, "%s:", stream)
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}

	g := fleet[0].Chip.Geometry()
	rows := hbmrd.SampleRowsIn(g, 2)

	bers, err := hbmrd.RunBERContext(context.Background(), fleet, hbmrd.BERConfig{
		Channels:    []int{0, 3},
		Rows:        rows,
		HammerCount: 150_000,
		Reps:        1,
	}, hbmrd.WithJobs(jobs))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bers {
		record("ber", r)
	}

	hcs, err := hbmrd.RunHCFirstContext(context.Background(), fleet, hbmrd.HCFirstConfig{
		Channels: []int{0, 4},
		Rows:     rows[:1],
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0, hbmrd.Rowstripe0},
		Reps:     1,
	}, hbmrd.WithJobs(jobs))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hcs {
		record("hcfirst", r)
	}

	// Retention is independent of the sweep engine (single channel, no
	// workers) but exercises the model's retention path and so belongs in
	// the byte-identity contract.
	chip, err := hbmrd.NewChip(2, hbmrd.WithGeometry(preset), hbmrd.WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	rets, err := hbmrd.MeasureRetentionBaselines(chip, 0, 64,
		[]hbmrd.TimePS{120 * hbmrd.MS, 4 * hbmrd.SEC})
	if err != nil {
		t.Fatal(err)
	}
	record("retention", rets)
}

// No testing.Short() skip: CI's test and race jobs run the short suite,
// and the digest contract is only worth anything if CI actually checks
// it. The sweep takes well under a second per preset on the cached
// kernel.
func TestGoldenSweepDigest(t *testing.T) {
	for _, preset := range hbmrd.Presets() {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := goldenSweepDigests[preset.Name]
			digests := map[int]string{}
			for _, jobs := range []int{1, 2, 8} {
				h := sha256.New()
				goldenSweep(t, preset, jobs, h)
				digests[jobs] = hex.EncodeToString(h.Sum(nil))
			}
			if digests[2] != digests[1] || digests[8] != digests[1] {
				t.Fatalf("record stream depends on worker count: jobs1=%s jobs2=%s jobs8=%s",
					digests[1], digests[2], digests[8])
			}
			if !ok {
				t.Fatalf("no pinned digest for preset %s (got %s)", preset.Name, digests[1])
			}
			if digests[1] != want {
				t.Errorf("record stream digest changed:\n got %s\nwant %s\n"+
					"(byte-identity contract: re-pin only for deliberate model changes)", digests[1], want)
			}
		})
	}
}
