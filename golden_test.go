package hbmrd_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"testing"

	"hbmrd"
)

// The fault model's determinism contract says the per-cell hash stream is
// the spec: optimizations may reorder evaluation but must leave every
// sweep's record stream byte-identical. This test enforces the contract in
// CI by hashing the full JSON record stream of a small multi-preset sweep
// (BER + HCfirst + retention) and pinning the digest. The same sweep runs
// with -jobs 1, 2 and 8 and must digest identically regardless of worker
// count (the engine emits records in plan order by construction).
//
// The pinned digests were produced by the pre-optimization scalar kernel
// (commit 2e63887); any model or device change that alters them is a
// behaviour change, not a refactor, and needs a deliberate re-pin with an
// explanation in the commit message.
var goldenSweepDigests = map[string]string{
	"HBM2_8Gb":   "fde3b7d82bb2d843ffe9f26d91b6e21502b33fece7b12cb22a2b637a8c7a1aa4",
	"HBM2E_16Gb": "904de82bfacedc58ce3d9cb39799207aa0fc8cbfeac98a47d8f220c51d6fdfdd",
	"HBM3_16Gb":  "ec8803efe514260f8139321970859c4634c59f51720e430768de36ff52f80a64",
}

// goldenPresets returns the three legacy presets whose digests predate the
// Ramulator2 registry port: they pin byte-identity across that refactor.
// The ported matrix is covered by TestPresetMatrixGoldenDigest instead,
// which runs a much smaller sweep on each of its ~20 organizations.
func goldenPresets(t *testing.T) []hbmrd.GeometryPreset {
	t.Helper()
	ps := make([]hbmrd.GeometryPreset, 0, len(goldenSweepDigests))
	for _, name := range []string{"HBM2_8Gb", "HBM2E_16Gb", "HBM3_16Gb"} {
		p, err := hbmrd.LookupPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

// goldenSweep runs the digest workload for one preset at one worker count
// and feeds every record, in order, into h.
func goldenSweep(t *testing.T, preset hbmrd.GeometryPreset, jobs int, h hash.Hash) {
	t.Helper()
	fleet, err := hbmrd.NewFleet([]int{0, 5}, hbmrd.WithGeometry(preset), hbmrd.WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(h)
	record := func(stream string, rec any) {
		fmt.Fprintf(h, "%s:", stream)
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}

	g := fleet[0].Chip.Geometry()
	rows := hbmrd.SampleRowsIn(g, 2)

	bers, err := hbmrd.RunBERContext(context.Background(), fleet, hbmrd.BERConfig{
		Channels:    []int{0, 3},
		Rows:        rows,
		HammerCount: 150_000,
		Reps:        1,
	}, hbmrd.WithJobs(jobs))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bers {
		record("ber", r)
	}

	hcs, err := hbmrd.RunHCFirstContext(context.Background(), fleet, hbmrd.HCFirstConfig{
		Channels: []int{0, 4},
		Rows:     rows[:1],
		Patterns: []hbmrd.Pattern{hbmrd.Checkered0, hbmrd.Rowstripe0},
		Reps:     1,
	}, hbmrd.WithJobs(jobs))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hcs {
		record("hcfirst", r)
	}

	// Retention is independent of the sweep engine (single channel, no
	// workers) but exercises the model's retention path and so belongs in
	// the byte-identity contract.
	chip, err := hbmrd.NewChip(2, hbmrd.WithGeometry(preset), hbmrd.WithIdentityMapping())
	if err != nil {
		t.Fatal(err)
	}
	rets, err := hbmrd.MeasureRetentionBaselines(chip, 0, 64,
		[]hbmrd.TimePS{120 * hbmrd.MS, 4 * hbmrd.SEC})
	if err != nil {
		t.Fatal(err)
	}
	record("retention", rets)
}

// presetMatrixDigests pins a much smaller digest workload (one chip, one
// channel, one row pair, BER + HCfirst) for every organization of the
// ported Ramulator2 registry. The legacy presets keep their original
// heavyweight pins above; this map is the matrix's regression net, so a
// timing-row or organization edit to any ported preset shows up as a
// digest diff here rather than silently shifting sweep output.
// Presets with the same rows-per-bank share a digest: record contents
// depend on the fault model's row geometry, not on the timing row or the
// rank count (the workload samples one bank of channel 0).
var presetMatrixDigests = map[string]string{
	"HBM2_2Gb":           "31e6263b28b71c7d3c46bd47a4e54ccfbab179605ad5238ff60f395cf9582e4c",
	"HBM2_4Gb":           "31e6263b28b71c7d3c46bd47a4e54ccfbab179605ad5238ff60f395cf9582e4c",
	"HBM2E_8Gb":          "31e6263b28b71c7d3c46bd47a4e54ccfbab179605ad5238ff60f395cf9582e4c",
	"HBM2E_16Gb_2.4Gbps": "96796b7c5e5f79a4c5a9a1e9df287f1a2d528b95d252f84ef87c0fab1a77400b",
	"HBM2E_16Gb_2.8Gbps": "96796b7c5e5f79a4c5a9a1e9df287f1a2d528b95d252f84ef87c0fab1a77400b",
	"HBM2E_16Gb_3.2Gbps": "96796b7c5e5f79a4c5a9a1e9df287f1a2d528b95d252f84ef87c0fab1a77400b",
	"HBM2E_16Gb_3.6Gbps": "96796b7c5e5f79a4c5a9a1e9df287f1a2d528b95d252f84ef87c0fab1a77400b",
	"HBM3_2Gb_1R":        "2366a7614cd2c5bb5faeb2281a24f107ffa9115ec2d29865633fb74668dff21b",
	"HBM3_4Gb_1R":        "1ebdb2ca61dd9ec52cee04401c7f65578e2d14fc6943730cc8a76965a9809dec",
	"HBM3_8Gb_1R":        "9bf23d53b51b8ea6fca81b6b1faf211aa3bae37c8cd955def5f9e1a0978cb06c",
	"HBM3_4Gb_2R":        "2366a7614cd2c5bb5faeb2281a24f107ffa9115ec2d29865633fb74668dff21b",
	"HBM3_8Gb_2R":        "1ebdb2ca61dd9ec52cee04401c7f65578e2d14fc6943730cc8a76965a9809dec",
	"HBM3_16Gb_2R":       "9bf23d53b51b8ea6fca81b6b1faf211aa3bae37c8cd955def5f9e1a0978cb06c",
	"HBM3_6Gb_3R":        "2366a7614cd2c5bb5faeb2281a24f107ffa9115ec2d29865633fb74668dff21b",
	"HBM3_12Gb_3R":       "1ebdb2ca61dd9ec52cee04401c7f65578e2d14fc6943730cc8a76965a9809dec",
	"HBM3_24Gb_3R":       "9bf23d53b51b8ea6fca81b6b1faf211aa3bae37c8cd955def5f9e1a0978cb06c",
	"HBM3_8Gb_4R":        "2366a7614cd2c5bb5faeb2281a24f107ffa9115ec2d29865633fb74668dff21b",
	"HBM3_16Gb_4R":       "1ebdb2ca61dd9ec52cee04401c7f65578e2d14fc6943730cc8a76965a9809dec",
	"HBM3_32Gb_4R":       "9bf23d53b51b8ea6fca81b6b1faf211aa3bae37c8cd955def5f9e1a0978cb06c",
}

func TestPresetMatrixGoldenDigest(t *testing.T) {
	for _, preset := range hbmrd.Presets() {
		if preset.DataRateMbps == 0 {
			continue // legacy presets: covered by TestGoldenSweepDigest
		}
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			t.Parallel()
			h := sha256.New()
			fleet, err := hbmrd.NewFleet([]int{0}, hbmrd.WithGeometry(preset), hbmrd.WithIdentityMapping())
			if err != nil {
				t.Fatal(err)
			}
			enc := json.NewEncoder(h)
			record := func(stream string, rec any) {
				fmt.Fprintf(h, "%s:", stream)
				if err := enc.Encode(rec); err != nil {
					t.Fatal(err)
				}
			}
			rows := hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), 2)
			bers, err := hbmrd.RunBERContext(context.Background(), fleet, hbmrd.BERConfig{
				Channels:    []int{0},
				Rows:        rows,
				HammerCount: 150_000,
				Reps:        1,
			}, hbmrd.WithJobs(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range bers {
				record("ber", r)
			}
			hcs, err := hbmrd.RunHCFirstContext(context.Background(), fleet, hbmrd.HCFirstConfig{
				Channels: []int{0},
				Rows:     rows[:1],
				Patterns: []hbmrd.Pattern{hbmrd.Checkered0},
				Reps:     1,
			}, hbmrd.WithJobs(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range hcs {
				record("hcfirst", r)
			}
			got := hex.EncodeToString(h.Sum(nil))
			want, ok := presetMatrixDigests[preset.Name]
			if !ok {
				t.Fatalf("no pinned digest for preset %s (got %s)", preset.Name, got)
			}
			if got != want {
				t.Errorf("record stream digest changed:\n got %s\nwant %s\n"+
					"(byte-identity contract: re-pin only for deliberate model changes)", got, want)
			}
		})
	}
}

// TestGoldenResumeByteIdentity extends the byte-identity contract to
// checkpoint/resume through the public API: the golden workload's BER
// sweep, streamed to a file, cancelled mid-run, and resumed with
// -resume's exact flow (ResumeFrom + WithResume + a file sink) must
// finish byte-identical to an uninterrupted run - at every worker count,
// on every preset. The record bytes themselves are pinned transitively:
// TestGoldenSweepDigest hashes the same sweep's record stream against the
// golden digests, so this test only needs equality, not its own pin.
func TestGoldenResumeByteIdentity(t *testing.T) {
	for _, preset := range goldenPresets(t) {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			t.Parallel()
			newFleet := func() []*hbmrd.TestChip {
				fleet, err := hbmrd.NewFleet([]int{0, 5}, hbmrd.WithGeometry(preset), hbmrd.WithIdentityMapping())
				if err != nil {
					t.Fatal(err)
				}
				return fleet
			}
			cfg := hbmrd.BERConfig{
				Channels:    []int{0, 3},
				Rows:        hbmrd.SampleRowsIn(newFleet()[0].Chip.Geometry(), 2),
				HammerCount: 150_000,
				Reps:        1,
			}

			fullPath := filepath.Join(t.TempDir(), "full.jsonl")
			ff, err := os.Create(fullPath)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := hbmrd.RunBERContext(context.Background(), newFleet(), cfg,
				hbmrd.WithJobs(1), hbmrd.WithSink(hbmrd.NewJSONLFileSink(ff))); err != nil {
				t.Fatal(err)
			}
			ff.Close()
			full, err := os.ReadFile(fullPath)
			if err != nil {
				t.Fatal(err)
			}

			for _, jobs := range []int{1, 2, 8} {
				// Cut mid-stream: an arbitrary offset, not a line boundary.
				cut := len(full) * 2 / 3
				path := filepath.Join(t.TempDir(), fmt.Sprintf("part-%d.jsonl", jobs))
				if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				f, err := os.OpenFile(path, os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				cp, err := hbmrd.ResumeFrom(f)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := hbmrd.RunBERContext(context.Background(), newFleet(), cfg,
					hbmrd.WithJobs(jobs), hbmrd.WithSink(hbmrd.NewJSONLFileSink(f)), hbmrd.WithResume(cp)); err != nil {
					t.Fatal(err)
				}
				f.Close()
				got, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, full) {
					t.Errorf("jobs %d: resumed file diverges from uninterrupted run (%d vs %d bytes)",
						jobs, len(got), len(full))
				}
			}
		})
	}
}

// No testing.Short() skip: CI's test and race jobs run the short suite,
// and the digest contract is only worth anything if CI actually checks
// it. The sweep takes well under a second per preset on the cached
// kernel.
func TestGoldenSweepDigest(t *testing.T) {
	for _, preset := range goldenPresets(t) {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := goldenSweepDigests[preset.Name]
			digests := map[int]string{}
			for _, jobs := range []int{1, 2, 8} {
				h := sha256.New()
				goldenSweep(t, preset, jobs, h)
				digests[jobs] = hex.EncodeToString(h.Sum(nil))
			}
			if digests[2] != digests[1] || digests[8] != digests[1] {
				t.Fatalf("record stream depends on worker count: jobs1=%s jobs2=%s jobs8=%s",
					digests[1], digests[2], digests[8])
			}
			if !ok {
				t.Fatalf("no pinned digest for preset %s (got %s)", preset.Name, digests[1])
			}
			if digests[1] != want {
				t.Errorf("record stream digest changed:\n got %s\nwant %s\n"+
					"(byte-identity contract: re-pin only for deliberate model changes)", digests[1], want)
			}
		})
	}
}
