// Command querysmoke is the CI gate for the query subsystem: it runs a
// tiny deterministic BER sweep into a temporary store, executes one query
// per aggregation reducer, and diffs the combined canonical output
// (aggregate JSON plus CSV per query, and a derived-cache hit check)
// against the committed golden at tools/querysmoke/testdata/smoke.golden.
//
// The golden pins the whole path from fault-model bytes to aggregate
// bytes, so it re-pins for the same reasons the golden sweep digests do
// (deliberate fault-model changes, with a core.CodeGeneration bump) or
// when the aggregate format changes (a query.FormatGeneration bump).
// Re-pin with:
//
//	go run ./tools/querysmoke -update
//
// Run `make query-smoke` locally; CI runs it on every push.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hbmrd"
)

func main() {
	update := flag.Bool("update", false, "re-pin the golden instead of diffing against it")
	golden := flag.String("golden", "tools/querysmoke/testdata/smoke.golden", "golden file path (relative to the repo root)")
	flag.Parse()
	if err := run(*update, *golden); err != nil {
		fmt.Fprintln(os.Stderr, "querysmoke:", err)
		os.Exit(1)
	}
}

// smokeQueries enumerates one query per reducer over the smoke sweep.
func smokeQueries(fp string) []hbmrd.QuerySpec {
	base := func(reducers ...string) hbmrd.QuerySpec {
		return hbmrd.QuerySpec{
			Sweep:    fp,
			GroupBy:  []string{"channel"},
			Metric:   "ber_percent",
			Where:    []hbmrd.QueryCond{{Dim: "wcdp", Value: "false"}},
			Reducers: reducers,
		}
	}
	specs := []hbmrd.QuerySpec{
		base("count"),
		base("mean"),
		base("stddev"),
		base("cv"),
		base("min"),
		base("max"),
		base("median"),
	}
	p := base("percentiles")
	p.Percentiles = []float64{25, 50, 75}
	specs = append(specs, p)
	h := base("histogram")
	h.Edges = []float64{0, 0.1, 0.5, 1, 5}
	specs = append(specs, h)
	specs = append(specs, base("box"))
	return specs
}

// runStored executes one sweep through the -out flow (a fresh fleet per
// sweep, exactly as the CLI runs them) and ingests it into the store.
func runStored(dir string, st *hbmrd.SweepStore, name string, run func(fleet []*hbmrd.TestChip, sink hbmrd.Sink) error) (hbmrd.SweepStoreMeta, error) {
	fleet, err := hbmrd.NewFleet([]int{0}, hbmrd.WithIdentityMapping())
	if err != nil {
		return hbmrd.SweepStoreMeta{}, err
	}
	outPath := filepath.Join(dir, name+".jsonl")
	f, err := os.Create(outPath)
	if err != nil {
		return hbmrd.SweepStoreMeta{}, err
	}
	sink := hbmrd.NewJSONLFileSink(f)
	err = run(fleet, sink)
	if err == nil {
		err = sink.Err()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return hbmrd.SweepStoreMeta{}, err
	}
	return hbmrd.IngestSweep(st, outPath)
}

func run(update bool, goldenPath string) error {
	dir, err := os.MkdirTemp("", "querysmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	st, err := hbmrd.OpenSweepStore(filepath.Join(dir, "store"))
	if err != nil {
		return err
	}

	// A tiny deterministic sweep through the -out flow.
	meta, err := runStored(dir, st, "ber", func(fleet []*hbmrd.TestChip, sink hbmrd.Sink) error {
		_, err := hbmrd.RunBERContext(ctx, fleet, hbmrd.BERConfig{
			Channels:    []int{0, 1},
			Rows:        hbmrd.SampleRows(2),
			Patterns:    []hbmrd.Pattern{hbmrd.Rowstripe0, hbmrd.Checkered0},
			HammerCount: 100_000,
			Reps:        1,
		}, hbmrd.WithSink(sink))
		return err
	})
	if err != nil {
		return err
	}

	var out bytes.Buffer
	eng := hbmrd.NewQueryEngine(st)
	specs := smokeQueries(meta.Fingerprint)
	for _, spec := range specs {
		res, err := eng.Run(spec)
		if err != nil {
			return fmt.Errorf("reducer %v: %w", spec.Reducers, err)
		}
		fmt.Fprintf(&out, "==== reducer %s ====\n", strings.Join(spec.Reducers, ","))
		out.Write(res.JSON)
		out.WriteString(res.Aggregate.CSV())
	}

	// The post-legacy sweep kinds: one tiny sweep each through the same
	// -out flow, queried through their figure presets. Their specs join
	// the cold-path equivalence loop below.
	vrdMeta, err := runStored(dir, st, "vrd", func(fleet []*hbmrd.TestChip, sink hbmrd.Sink) error {
		_, err := hbmrd.RunVRDContext(ctx, fleet, hbmrd.VRDConfig{
			Rows: hbmrd.SampleRows(2), Trials: 3,
		}, hbmrd.WithSink(sink))
		return err
	})
	if err != nil {
		return err
	}
	colMeta, err := runStored(dir, st, "coldist", func(fleet []*hbmrd.TestChip, sink hbmrd.Sink) error {
		_, err := hbmrd.RunColDisturbContext(ctx, fleet, hbmrd.ColDisturbConfig{
			AggRows: hbmrd.SampleRows(2)[:1], Distances: []int{1, 3}, Stripes: []int{1, 2},
			Reads: 8_000, MaxReads: 1 << 17,
		}, hbmrd.WithSink(sink))
		return err
	})
	if err != nil {
		return err
	}
	for _, fig := range []struct{ name, fp string }{
		{"figvrd", vrdMeta.Fingerprint},
		{"figcoldist", colMeta.Fingerprint},
	} {
		spec, err := hbmrd.QueryFigureSpec(fig.name, fig.fp)
		if err != nil {
			return err
		}
		res, err := eng.Run(spec)
		if err != nil {
			return fmt.Errorf("figure %s: %w", fig.name, err)
		}
		fmt.Fprintf(&out, "==== figure %s ====\n", fig.name)
		out.Write(res.JSON)
		out.WriteString(res.Aggregate.CSV())
		specs = append(specs, spec)
	}
	// Every golden query must produce byte-identical aggregates through
	// both cold representations - the columnar artifact and the raw
	// JSONL records - the equivalence contract that lets the engine pick
	// its path freely.
	for _, spec := range specs {
		col, err := eng.RunCold(spec, hbmrd.QuerySourceColumnar)
		if err != nil {
			return fmt.Errorf("cold columnar %v: %w", spec.Reducers, err)
		}
		raw, err := eng.RunCold(spec, hbmrd.QuerySourceJSONL)
		if err != nil {
			return fmt.Errorf("cold jsonl %v: %w", spec.Reducers, err)
		}
		if !bytes.Equal(col.JSON, raw.JSON) {
			return fmt.Errorf("reducer %v: columnar and JSONL cold paths disagree:\n  columnar: %s\n  jsonl:    %s",
				spec.Reducers, col.JSON, raw.JSON)
		}
	}
	fmt.Fprintf(&out, "==== paths ====\ncold columnar/jsonl byte-identical across %d queries\n", len(specs))

	// The derived cache must answer a repeated spec without re-reading
	// the raw records.
	before := eng.RawReads()
	again, err := eng.Run(specs[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(&out, "==== cache ====\nrepeat hit=%v raw-reads-moved=%v\n",
		again.CacheHit, eng.RawReads() != before)

	// The sweep fingerprint inside the output already pins config and
	// geometry; the golden therefore also catches accidental fingerprint
	// drift.
	if update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("querysmoke: pinned %d bytes to %s\n", out.Len(), goldenPath)
		return nil
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("%w (run `go run ./tools/querysmoke -update` to pin it)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		gotLines := strings.Split(out.String(), "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				return fmt.Errorf("output diverges from %s at line %d:\n  got:  %s\n  want: %s\n"+
					"(deliberate change? re-pin with `go run ./tools/querysmoke -update` and explain in the commit)",
					goldenPath, i+1, g, w)
			}
		}
		return fmt.Errorf("output diverges from %s", goldenPath)
	}
	fmt.Printf("querysmoke: %d queries matched %s\n", len(specs), goldenPath)
	return nil
}
