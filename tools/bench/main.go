// Command bench runs the repository's hot-path benchmarks and appends the
// results to a dated JSON file (BENCH_<date>.json by default), so the
// performance trajectory of the simulator survives across PRs: each entry
// records op time, allocs/op, and every custom metric a benchmark reports
// (headline figures like minHCfirst or flips/op).
//
// Usage:
//
//	go run ./tools/bench                      # default benchmark set
//	go run ./tools/bench -label after-opt     # tag the data point
//	go run ./tools/bench -bench 'FlipMask' -benchtime 2s
//	go run ./tools/bench -check               # regression tripwire (CI)
//
// -check compares the fresh results against the newest committed
// BENCH_*.json instead of recording them, and fails only on
// order-of-magnitude regressions (> -factor, default 3x, per benchmark).
// The wide margin makes it a tripwire for accidentally disabling a fast
// path, not a flaky micro-perf gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the kernels that bound sweep throughput, one
// end-to-end figure benchmark, the query read path (cold-miss
// aggregation through both stored representations plus the columnar
// artifact decode), the distributed fabric (shard-stream merge,
// 2-worker-vs-local sweep throughput, and the coordinator control-plane
// overhead with its polls/sweep and poll-wait-share metrics), and the
// telemetry overhead pair (enabled-vs-disabled on the fault-model
// kernel and the engine cell loop; allocs/op must stay 0).
const defaultBench = "FlipMaskHot|FlipMaskRetention|CalibFirstTouch|TrialJitter|Fig5HCFirstAcrossChips|RowInitReadHotPath|HammerReadHotPath|HammerThroughput|SweepJobsScaling|StrictTimingRowOps|QueryFig5ColdMiss|ColumnarDecode|ShardMerge|FabricSweep|FabricOverhead|TelemetryOverhead"

// Result is one benchmark data point.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one invocation of the benchmark suite.
type Run struct {
	Date       string   `json:"date"`
	Label      string   `json:"label,omitempty"`
	Commit     string   `json:"commit,omitempty"`
	GoVersion  string   `json:"go_version"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		bench     = flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1s", "value for go test -benchtime")
		label     = flag.String("label", "", "label stored with this data point")
		out       = flag.String("out", "", "output file (default BENCH_<date>.json)")
		pkgs      = flag.String("pkgs", "./...", "packages to benchmark")
		check     = flag.Bool("check", false, "compare against the newest committed BENCH_*.json and fail on >factor regressions instead of recording")
		against   = flag.String("against", "", "baseline file for -check (default: newest BENCH_*.json)")
		factor    = flag.Float64("factor", 3, "ns/op regression factor that fails -check")
	)
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime, *pkgs}
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench: go test failed:", err)
		os.Exit(1)
	}
	os.Stdout.Write(buf.Bytes())

	results := parse(&buf)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark results parsed")
		os.Exit(1)
	}

	if *check {
		if err := checkRegressions(results, *against, *factor); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}

	run := Run{
		Date:       date,
		Label:      *label,
		Commit:     gitCommit(),
		GoVersion:  runtime.Version(),
		Bench:      *bench,
		Benchtime:  *benchtime,
		Benchmarks: results,
	}

	// Append to any runs already recorded for the day, so before/after
	// pairs land in one file.
	var runs []Run
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &runs)
	}
	runs = append(runs, run)
	enc, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(results), path)
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName-8   123  456.7 ns/op  8 B/op  1 allocs/op  2.5 flips/op
func parse(buf *bytes.Buffer) []Result {
	var results []Result
	sc := bufio.NewScanner(buf)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.NumCPU())),
			Iterations: iters,
		}
		if i := strings.LastIndex(r.Name, "-"); i > 0 {
			// Strip any -N GOMAXPROCS suffix runtime.NumCPU didn't match.
			if _, err := strconv.Atoi(r.Name[i+1:]); err == nil {
				r.Name = r.Name[:i]
			}
		}
		// Value/unit pairs follow the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsPerOp = val
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = val
			}
		}
		results = append(results, r)
	}
	return results
}

// checkRegressions compares fresh results against the latest run recorded
// in the baseline file. Only benchmarks present in both are compared, on
// ns/op alone; a fresh value more than factor times the baseline fails.
// Renamed or new benchmarks never fail the check - the tripwire guards
// committed trajectories, not coverage.
func checkRegressions(fresh []Result, baselinePath string, factor float64) error {
	if baselinePath == "" {
		var err error
		baselinePath, err = newestBenchFile()
		if err != nil {
			return err
		}
	}
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var runs []Run
	if err := json.Unmarshal(b, &runs); err != nil || len(runs) == 0 {
		return fmt.Errorf("baseline %s holds no runs (%v)", baselinePath, err)
	}
	base := map[string]Result{}
	for _, r := range runs[len(runs)-1].Benchmarks {
		base[r.Name] = r
	}

	compared, failures := 0, 0
	for _, r := range fresh {
		old, ok := base[r.Name]
		if !ok || old.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := r.NsPerOp / old.NsPerOp
		status := "ok"
		if ratio > factor {
			status = "REGRESSION"
			failures++
		}
		fmt.Fprintf(os.Stderr, "bench: %-60s %12.1f -> %12.1f ns/op (%5.2fx) %s\n",
			r.Name, old.NsPerOp, r.NsPerOp, ratio, status)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks in common with baseline %s", baselinePath)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed more than %.1fx vs %s", failures, compared, factor, baselinePath)
	}
	fmt.Fprintf(os.Stderr, "bench: %d benchmarks within %.1fx of %s\n", compared, factor, baselinePath)
	return nil
}

// newestBenchFile finds the lexically newest committed BENCH_<date>.json
// (the dates are ISO, so lexical order is chronological).
func newestBenchFile() (string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil || len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json baseline found (run make bench first)")
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
