// Command bench runs the repository's hot-path benchmarks and appends the
// results to a dated JSON file (BENCH_<date>.json by default), so the
// performance trajectory of the simulator survives across PRs: each entry
// records op time, allocs/op, and every custom metric a benchmark reports
// (headline figures like minHCfirst or flips/op).
//
// Usage:
//
//	go run ./tools/bench                      # default benchmark set
//	go run ./tools/bench -label after-opt     # tag the data point
//	go run ./tools/bench -bench 'FlipMask' -benchtime 2s
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the kernels that bound sweep throughput plus one
// end-to-end figure benchmark.
const defaultBench = "FlipMaskHot|FlipMaskRetention|CalibFirstTouch|TrialJitter|Fig5HCFirstAcrossChips|RowInitReadHotPath|HammerReadHotPath|HammerThroughput|SweepJobsScaling"

// Result is one benchmark data point.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one invocation of the benchmark suite.
type Run struct {
	Date       string   `json:"date"`
	Label      string   `json:"label,omitempty"`
	Commit     string   `json:"commit,omitempty"`
	GoVersion  string   `json:"go_version"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		bench     = flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1s", "value for go test -benchtime")
		label     = flag.String("label", "", "label stored with this data point")
		out       = flag.String("out", "", "output file (default BENCH_<date>.json)")
		pkgs      = flag.String("pkgs", "./...", "packages to benchmark")
	)
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime, *pkgs}
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench: go test failed:", err)
		os.Exit(1)
	}
	os.Stdout.Write(buf.Bytes())

	results := parse(&buf)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark results parsed")
		os.Exit(1)
	}

	run := Run{
		Date:       date,
		Label:      *label,
		Commit:     gitCommit(),
		GoVersion:  runtime.Version(),
		Bench:      *bench,
		Benchtime:  *benchtime,
		Benchmarks: results,
	}

	// Append to any runs already recorded for the day, so before/after
	// pairs land in one file.
	var runs []Run
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &runs)
	}
	runs = append(runs, run)
	enc, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(results), path)
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName-8   123  456.7 ns/op  8 B/op  1 allocs/op  2.5 flips/op
func parse(buf *bytes.Buffer) []Result {
	var results []Result
	sc := bufio.NewScanner(buf)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.NumCPU())),
			Iterations: iters,
		}
		if i := strings.LastIndex(r.Name, "-"); i > 0 {
			// Strip any -N GOMAXPROCS suffix runtime.NumCPU didn't match.
			if _, err := strconv.Atoi(r.Name[i+1:]); err == nil {
				r.Name = r.Name[:i]
			}
		}
		// Value/unit pairs follow the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsPerOp = val
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = val
			}
		}
		results = append(results, r)
	}
	return results
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
