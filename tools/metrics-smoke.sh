#!/usr/bin/env bash
# metrics-smoke: boot a live hbmrdd against a temp store, run a tiny
# sweep through it, and assert the /metrics exposition is well-formed
# Prometheus text that actually moved - the daemon-level complement to
# the in-process /metrics tests.
set -euo pipefail

dir=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/hbmrdd" ./cmd/hbmrdd
port=$((20000 + RANDOM % 20000))
base="http://127.0.0.1:$port"
"$dir/hbmrdd" -addr "127.0.0.1:$port" -store "$dir/store" >"$dir/hbmrdd.log" 2>&1 &
pid=$!

for _ in $(seq 1 100); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null || { echo "hbmrdd never came up"; cat "$dir/hbmrdd.log"; exit 1; }

spec='{"kind":"ber","chips":[0],"identity_mapping":true,"config":{"Channels":[0],"Rows":[2000,3000],"Patterns":["Rowstripe0"],"Reps":1}}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$spec" "$base/sweeps" >/dev/null

# Wait until the sweep lands in the metrics, then pin the exposition.
for _ in $(seq 1 100); do
  if curl -fsS "$base/metrics" 2>/dev/null | grep -F 'hbmrd_serve_sweeps_completed_total{status="done"} 1' >/dev/null; then
    break
  fi
  sleep 0.1
done

expo=$(curl -fsS -D "$dir/headers" "$base/metrics")
grep -qi '^Content-Type: text/plain; version=0.0.4' "$dir/headers" \
  || { echo "wrong /metrics Content-Type:"; cat "$dir/headers"; exit 1; }

fail=0
for want in \
  '# TYPE hbmrd_sweep_cells_total counter' \
  '# TYPE hbmrd_serve_jobs_running gauge' \
  '# TYPE hbmrd_http_request_seconds histogram' \
  'hbmrd_sweep_cells_total{kind="ber"} 2' \
  'hbmrd_serve_sweeps_completed_total{status="done"} 1' \
  'hbmrd_store_puts_total 1' \
  'hbmrd_http_request_seconds_bucket{route="healthz",le="+Inf"}' \
  'hbmrd_http_requests_total{code="202",route="sweeps"} 1' \
  ; do
  if ! grep -qF "$want" <<<"$expo"; then
    echo "missing from /metrics: $want"
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  echo "--- /metrics ---"; echo "$expo"; exit 1
fi
echo "metrics-smoke: ok ($(grep -c '^hbmrd_' <<<"$expo") samples)"
