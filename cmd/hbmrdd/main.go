// Command hbmrdd serves sweeps over HTTP: POST a sweep spec, stream its
// records live as NDJSON, get identical finished sweeps straight from the
// content-addressed result store instead of re-executing them, and run
// aggregation queries over stored sweeps - repeated identical queries are
// served from the store's derived-result cache.
//
// Usage:
//
//	hbmrdd [-addr :8344] [-store DIR] [-workers N] [-jobs N] [-drain-timeout 10s]
//	       [-peers URL,URL,...] [-shards N] [-http-timeout 30s] [-http-idle-timeout 2m]
//
// With -peers the daemon becomes a sweep coordinator: shardable sweeps
// are split into contiguous cell-range shards and dispatched to the
// listed hbmrdd workers with retry, backoff, per-shard timeouts, and
// worker quarantine; the merged result is byte-identical to a local run,
// and any shard the pool cannot finish is healed locally through the
// ordinary checkpoint-resume path.
//
// Endpoints:
//
//	POST /sweeps            submit {"kind":"ber","chips":[0],"config":{...}}
//	GET  /sweeps            catalog: jobs plus stored sweeps (?kind= filters)
//	GET  /sweeps/<fp>       stream NDJSON (live tail, or instant store hit)
//	GET  /sweeps/<fp>/status
//	GET  /sweeps/<fp>/records  typed decoded records of a stored sweep
//	POST /query             run an aggregation spec (?format=csv for CSV)
//	GET  /healthz           store path, live jobs, catalog size, metric snapshot
//	GET  /metrics           Prometheus text exposition (counters, gauges, histograms)
//	GET  /debug/pprof/      runtime profiles (only with -pprof)
//
// On SIGTERM/SIGINT the service drains: in-flight sweeps are cancelled
// and their spool files keep a valid checkpoint prefix (fingerprint
// header plus complete records), so resubmitting the same spec after a
// restart resumes instead of starting over. -drain-timeout bounds how
// long shutdown waits for that checkpointing; past it the process exits
// anyway (the spool still holds the last completed cells - unbuffered
// writes mean at most one torn line, which resume drops).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"hbmrd/internal/fabric"
	"hbmrd/internal/serve"
	"hbmrd/internal/store"
	"hbmrd/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hbmrdd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hbmrdd", flag.ContinueOnError)
	addr := fs.String("addr", ":8344", "listen address")
	storeDir := fs.String("store", "hbmrd-store", "result store directory")
	workers := fs.Int("workers", 1, "max concurrently executing sweeps")
	jobs := fs.Int("jobs", 0, "per-sweep engine workers (default GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "max time to wait on shutdown for in-flight sweeps to checkpoint")
	peers := fs.String("peers", "", "comma-separated worker base URLs; when set, shardable sweeps are distributed across them")
	shards := fs.Int("shards", 0, "shards per distributed sweep (default 2 per peer)")
	shardTimeout := fs.Duration("shard-timeout", 2*time.Minute, "per-shard end-to-end deadline across retries")
	httpTimeout := fs.Duration("http-timeout", 30*time.Second, "request header+body read deadline (slowloris guard)")
	httpIdleTimeout := fs.Duration("http-idle-timeout", 2*time.Minute, "keep-alive idle connection deadline")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	lg := telemetry.NewLogger(log.Printf)
	cfg := serve.Config{Store: st, Workers: *workers, Jobs: *jobs, Log: lg, Pprof: *pprofOn}
	if *peers != "" {
		coord, err := fabric.New(fabric.Config{
			Peers:        strings.Split(*peers, ","),
			Shards:       *shards,
			ShardTimeout: *shardTimeout,
			Log:          lg,
		})
		if err != nil {
			return err
		}
		cfg.Distribute = coord.Distribute
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}

	// WriteTimeout stays 0 on purpose: live NDJSON tails are open-ended.
	// Read deadlines and the idle deadline keep a slow or stalled client
	// from pinning a connection forever.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *httpTimeout,
		ReadTimeout:       *httpTimeout,
		IdleTimeout:       *httpIdleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("hbmrdd: serving on %s (store %s, %d workers)", *addr, *storeDir, *workers)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting, checkpoint in-flight sweeps, then leave. The
	// whole shutdown - HTTP drain plus sweep checkpointing - is bounded by
	// -drain-timeout instead of waiting indefinitely: if a worker wedges,
	// the process exits anyway, and the unbuffered spool still holds every
	// completed cell for the next run to resume.
	log.Printf("hbmrdd: draining (in-flight sweeps checkpoint to the spool; bounded at %s)", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain first (concurrently with the HTTP shutdown): it cancels the
	// in-flight sweeps, which is what ends the live NDJSON streams that
	// would otherwise keep Shutdown - and with it the whole budget -
	// blocked on active connections.
	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	shutErr := httpSrv.Shutdown(shutCtx)
	select {
	case <-drained:
		log.Print("hbmrdd: drained")
	case <-shutCtx.Done():
		log.Printf("hbmrdd: drain exceeded %s; exiting with spools as-is", *drainTimeout)
	}
	if shutErr != nil && !errors.Is(shutErr, context.DeadlineExceeded) {
		return shutErr
	}
	return nil
}
