// Command hbmrdd serves sweeps over HTTP: POST a sweep spec, stream its
// records live as NDJSON, get identical finished sweeps straight from the
// content-addressed result store instead of re-executing them, and run
// aggregation queries over stored sweeps - repeated identical queries are
// served from the store's derived-result cache.
//
// Usage:
//
//	hbmrdd [-addr :8344] [-store DIR] [-workers N] [-jobs N] [-drain-timeout 10s]
//
// Endpoints:
//
//	POST /sweeps            submit {"kind":"ber","chips":[0],"config":{...}}
//	GET  /sweeps            catalog: jobs plus stored sweeps (?kind= filters)
//	GET  /sweeps/<fp>       stream NDJSON (live tail, or instant store hit)
//	GET  /sweeps/<fp>/status
//	GET  /sweeps/<fp>/records  typed decoded records of a stored sweep
//	POST /query             run an aggregation spec (?format=csv for CSV)
//	GET  /healthz           store path, live jobs, catalog size
//
// On SIGTERM/SIGINT the service drains: in-flight sweeps are cancelled
// and their spool files keep a valid checkpoint prefix (fingerprint
// header plus complete records), so resubmitting the same spec after a
// restart resumes instead of starting over. -drain-timeout bounds how
// long shutdown waits for that checkpointing; past it the process exits
// anyway (the spool still holds the last completed cells - unbuffered
// writes mean at most one torn line, which resume drops).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hbmrd/internal/serve"
	"hbmrd/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hbmrdd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hbmrdd", flag.ContinueOnError)
	addr := fs.String("addr", ":8344", "listen address")
	storeDir := fs.String("store", "hbmrd-store", "result store directory")
	workers := fs.Int("workers", 1, "max concurrently executing sweeps")
	jobs := fs.Int("jobs", 0, "per-sweep engine workers (default GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "max time to wait on shutdown for in-flight sweeps to checkpoint")
	if err := fs.Parse(args); err != nil {
		return err
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{Store: st, Workers: *workers, Jobs: *jobs})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("hbmrdd: serving on %s (store %s, %d workers)", *addr, *storeDir, *workers)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting, checkpoint in-flight sweeps, then leave. The
	// whole shutdown - HTTP drain plus sweep checkpointing - is bounded by
	// -drain-timeout instead of waiting indefinitely: if a worker wedges,
	// the process exits anyway, and the unbuffered spool still holds every
	// completed cell for the next run to resume.
	log.Printf("hbmrdd: draining (in-flight sweeps checkpoint to the spool; bounded at %s)", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain first (concurrently with the HTTP shutdown): it cancels the
	// in-flight sweeps, which is what ends the live NDJSON streams that
	// would otherwise keep Shutdown - and with it the whole budget -
	// blocked on active connections.
	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	shutErr := httpSrv.Shutdown(shutCtx)
	select {
	case <-drained:
		log.Print("hbmrdd: drained")
	case <-shutCtx.Done():
		log.Printf("hbmrdd: drain exceeded %s; exiting with spools as-is", *drainTimeout)
	}
	if shutErr != nil && !errors.Is(shutErr, context.DeadlineExceeded) {
		return shutErr
	}
	return nil
}
