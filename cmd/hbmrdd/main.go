// Command hbmrdd serves sweeps over HTTP: POST a sweep spec, stream its
// records live as NDJSON, and get identical finished sweeps straight from
// the content-addressed result store instead of re-executing them.
//
// Usage:
//
//	hbmrdd [-addr :8344] [-store DIR] [-workers N] [-jobs N]
//
// Endpoints:
//
//	POST /sweeps            submit {"kind":"ber","chips":[0],"config":{...}}
//	GET  /sweeps            list jobs and stored sweeps
//	GET  /sweeps/<fp>       stream NDJSON (live tail, or instant store hit)
//	GET  /sweeps/<fp>/status
//	GET  /healthz
//
// On SIGTERM/SIGINT the service drains: in-flight sweeps are cancelled
// and their spool files keep a valid checkpoint prefix (fingerprint
// header plus complete records), so resubmitting the same spec after a
// restart resumes instead of starting over.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hbmrd/internal/serve"
	"hbmrd/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hbmrdd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hbmrdd", flag.ContinueOnError)
	addr := fs.String("addr", ":8344", "listen address")
	storeDir := fs.String("store", "hbmrd-store", "result store directory")
	workers := fs.Int("workers", 1, "max concurrently executing sweeps")
	jobs := fs.Int("jobs", 0, "per-sweep engine workers (default GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{Store: st, Workers: *workers, Jobs: *jobs})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("hbmrdd: serving on %s (store %s, %d workers)", *addr, *storeDir, *workers)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting, checkpoint in-flight sweeps, then leave.
	log.Print("hbmrdd: draining (in-flight sweeps checkpoint to the spool)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutErr := httpSrv.Shutdown(shutCtx)
	srv.Drain()
	if shutErr != nil && !errors.Is(shutErr, context.DeadlineExceeded) {
		return shutErr
	}
	log.Print("hbmrdd: drained")
	return nil
}
