// Command membender assembles and executes a MemBender test program (the
// software analogue of a DRAM Bender program) against a simulated HBM2
// chip, printing read-back data and execution statistics.
//
// Usage:
//
//	membender [-chip N] [-channel N] [-strict] program.mb
//	membender [-chip N] [-channel N] -    (read the program from stdin)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hbmrd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "membender:", err)
		os.Exit(1)
	}
}

func run() error {
	chipIdx := flag.Int("chip", 0, "chip index 0-5")
	channel := flag.Int("channel", 0, "HBM2 channel 0-7")
	strict := flag.Bool("strict", false, "fail on timing violations instead of auto-delaying")
	hexDump := flag.Bool("hex", false, "dump full read data as hex")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: membender [flags] <program.mb | ->")
	}

	var src io.Reader
	if flag.Arg(0) == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	prog, err := hbmrd.ParseProgram(src)
	if err != nil {
		return err
	}

	var opts []hbmrd.ChipOption
	if *strict {
		opts = append(opts, hbmrd.WithStrictTiming())
	}
	chip, err := hbmrd.NewChip(*chipIdx, opts...)
	if err != nil {
		return err
	}
	plat := hbmrd.NewPlatform(chip)
	res, err := plat.Run(*channel, prog)
	if err != nil {
		return err
	}

	fmt.Printf("executed %d commands in %.3f ms of device time\n",
		res.Commands, float64(res.Duration())/float64(hbmrd.MS))
	for i, rec := range res.Reads {
		flips := 0
		first := rec.Data[0]
		uniform := true
		for _, b := range rec.Data {
			if b != first {
				uniform = false
			}
			for x := b; x != 0; x &= x - 1 {
				flips++
			}
		}
		where := fmt.Sprintf("pc%d.ba%d", rec.PC, rec.Bank)
		if rec.Row >= 0 {
			where += fmt.Sprintf(".row%d", rec.Row)
		} else {
			where += fmt.Sprintf(".col%d", rec.Col)
		}
		fmt.Printf("read %d: %s, %d bytes, %d set bits", i, where, len(rec.Data), flips)
		if uniform {
			fmt.Printf(", uniform 0x%02X", first)
		}
		fmt.Println()
		if *hexDump {
			for off := 0; off < len(rec.Data); off += 32 {
				end := off + 32
				if end > len(rec.Data) {
					end = len(rec.Data)
				}
				fmt.Printf("  %04x: % x\n", off, rec.Data[off:end])
			}
		}
	}
	return nil
}
