// Command trr-reveal runs the complete §7 methodology against a freshly
// powered simulated chip: it reverse-engineers the chip's logical-to-
// physical row mapping with single-sided hammering, then uncovers the
// undocumented TRR mechanism through the U-TRR retention side channel, and
// prints the findings (the paper's Observations 20-23).
package main

import (
	"flag"
	"fmt"
	"os"

	"hbmrd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trr-reveal:", err)
		os.Exit(1)
	}
}

func run() error {
	chipIdx := flag.Int("chip", 0, "chip index 0-5 (the paper probes Chip 0)")
	mapWindow := flag.Int("map-window", 32, "logical rows to reverse-engineer for the mapping demo")
	flag.Parse()

	chip, err := hbmrd.NewChip(*chipIdx)
	if err != nil {
		return err
	}

	// Step 1 (§3.1): demonstrate mapping reverse engineering on a window
	// of logical rows. The TRR probe itself uses the full mapping.
	fleet, err := hbmrd.NewFleet([]int{*chipIdx})
	if err != nil {
		return err
	}
	logical := make([]int, *mapWindow)
	for i := range logical {
		logical[i] = i
	}
	paths, err := hbmrd.ReverseEngineerMapping(fleet[0], hbmrd.SubarrayScanConfig{}, logical)
	if err != nil {
		return err
	}
	fmt.Printf("Reverse-engineered physical adjacency over logical rows [0, %d): %d path(s)\n", *mapWindow, len(paths))
	for i, p := range paths {
		if len(p) > 8 {
			fmt.Printf("  path %d (%d rows): %v ...\n", i, len(p), p[:8])
		} else {
			fmt.Printf("  path %d (%d rows): %v\n", i, len(p), p)
		}
	}

	// Step 2 (§7): uncover the TRR mechanism via retention side channels.
	fmt.Println("\nProbing the in-DRAM TRR mechanism (U-TRR retention side channel)...")
	findings, err := hbmrd.UncoverTRR(chip)
	if err != nil {
		return err
	}
	fmt.Print(hbmrd.RenderTRRFindings(findings))
	return nil
}
