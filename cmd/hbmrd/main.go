// Command hbmrd regenerates the paper's tables and figures against the
// simulated chip fleet. Each artifact runs at a reduced "demo" scale by
// default (seconds on a laptop); -full switches to the paper's component
// counts from Table 2 (hours).
//
// Usage:
//
//	hbmrd [-full] [-chips 0,1,...] [-geometry PRESET] [-jobs N] [-progress] [-out results.jsonl] [-shard S:E] <artifact>
//
// -geometry selects a chip organization preset: HBM2_8Gb (the paper's
// part and the default), the legacy HBM2E_16Gb/HBM3_16Gb organizations,
// or any preset of the ported Ramulator2 matrix (HBM2 and HBM2E data-rate
// rows, the twelve JESD238 HBM3 rank variants such as HBM3_16Gb_4R). The
// "geometries" artifact lists them all with their timing columns.
//
// Sweep execution flags: -jobs bounds the worker pool (default
// GOMAXPROCS), -progress reports live sweep progress on stderr, and -out
// streams every experiment record to a JSON Lines file as it is measured
// (a fingerprint header line, then one JSON object per line in
// deterministic plan order, so an interrupted run leaves a valid prefix
// of the full result set). Interrupting with Ctrl-C cancels the in-flight
// sweep promptly; -resume FILE picks a cancelled -out run back up from
// its valid prefix and completes the file byte-identically to an
// uninterrupted run. -shard START:END runs only that contiguous range of
// the sweep's plan cells under the shard's sub-fingerprint - the unit the
// distributed fabric (hbmrdd -peers) dispatches to workers.
//
// Artifacts: table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
// fig12 fig13 fig14 fig15 fig16 fig17 trr attack defense all
//
// The post-paper sweep kinds (vrd: per-cell HCfirst variability across
// repeated trials, arXiv 2502.13075; coldist: column-read disturbance,
// arXiv 2510.14750) run either as artifacts by name or through the -kind
// flag: `hbmrd -kind vrd -out vrd.jsonl`.
//
// The query verb works against a local sweep store instead of running
// experiments: `hbmrd query -ingest FILE` finalizes a completed -out file
// into the store, `hbmrd query` lists the catalog, and `hbmrd query -spec
// JSON` (or -figure fig5 -sweep FP) runs an aggregation - the same specs
// hbmrdd's POST /query accepts, with the same content-addressed caching,
// so the CLI and the service produce byte-identical aggregates.
//
//	hbmrd query [-store DIR] [-ingest FILE]
//	hbmrd query [-store DIR] [-kind KIND]                # list the catalog
//	hbmrd query [-store DIR] -spec JSON [-format table|csv|json]
//	hbmrd query [-store DIR] -figure fig5 -sweep FP [-format ...]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hbmrd"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The first signal cancels sweeps gracefully; restoring the default
	// handler right after means a second Ctrl-C (or a signal during a
	// non-sweep artifact) terminates the process immediately.
	context.AfterFunc(ctx, stop)
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hbmrd:", err)
		os.Exit(1)
	}
}

type runCtx struct {
	full     bool
	chips    []int
	geomSet  bool
	geom     hbmrd.GeometryPreset
	jobs     int
	progress bool
	out      *hbmrd.JSONLFileSink
	resume   *hbmrd.Checkpoint
	shard    *hbmrd.ShardRange
	tracer   *hbmrd.Tracer
	// label is the artifact name, used for progress-sink lines.
	label string
}

func run(ctx context.Context, args []string) error {
	if len(args) > 0 && args[0] == "query" {
		return runQuery(args[1:])
	}
	fs := flag.NewFlagSet("hbmrd", flag.ContinueOnError)
	full := fs.Bool("full", false, "run at the paper's Table 2 scale instead of demo scale")
	chipsFlag := fs.String("chips", "", "comma-separated chip indices (default: the artifact's paper chips)")
	geomFlag := fs.String("geometry", "", "chip geometry preset (default HBM2_8Gb; see the geometries artifact)")
	jobs := fs.Int("jobs", 0, "max concurrent sweep workers (default: GOMAXPROCS)")
	progress := fs.Bool("progress", false, "report live sweep progress on stderr")
	outFlag := fs.String("out", "", "stream experiment records to this JSON Lines file")
	resumeFlag := fs.String("resume", "", "resume a cancelled -out run from this JSON Lines file")
	shardFlag := fs.String("shard", "", "run only plan cells START:END of the artifact's sweep (a distributed-fabric shard)")
	kindFlag := fs.String("kind", "", `run one sweep kind directly ("vrd", "coldist") instead of naming an artifact`)
	traceFlag := fs.String("trace-out", "", "write sweep-lifecycle spans (plan/cells/finalize) to this JSON Lines file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *kindFlag != "":
		if fs.NArg() != 0 {
			return fmt.Errorf("-kind %s replaces the artifact argument", *kindFlag)
		}
		if *kindFlag != "vrd" && *kindFlag != "coldist" {
			return fmt.Errorf("unknown -kind %q (have: vrd, coldist)", *kindFlag)
		}
	case fs.NArg() != 1:
		return fmt.Errorf("usage: hbmrd [-full] [-chips 0,1] [-geometry PRESET] [-jobs N] [-progress] [-out FILE | -resume FILE] <artifact>; artifacts: %s", strings.Join(artifactNames(), " "))
	}
	if *resumeFlag != "" && *outFlag != "" {
		return fmt.Errorf("-resume continues an existing file; use it instead of -out, not with it")
	}
	c := runCtx{full: *full, jobs: *jobs, progress: *progress}
	if *geomFlag != "" {
		preset, err := hbmrd.LookupPreset(*geomFlag)
		if err != nil {
			return err
		}
		c.geom = preset
		c.geomSet = true
	}
	if *chipsFlag != "" {
		for _, part := range strings.Split(*chipsFlag, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -chips value %q: %w", part, err)
			}
			c.chips = append(c.chips, idx)
		}
	}
	if *shardFlag != "" {
		start, end, ok := strings.Cut(*shardFlag, ":")
		s, serr := strconv.Atoi(strings.TrimSpace(start))
		e, eerr := strconv.Atoi(strings.TrimSpace(end))
		if !ok || serr != nil || eerr != nil {
			return fmt.Errorf("bad -shard value %q: want START:END plan cell indices", *shardFlag)
		}
		c.shard = &hbmrd.ShardRange{Start: s, End: e}
	}
	// Reject unknown artifacts before -out truncates an existing results
	// file over a typo.
	name := fs.Arg(0)
	if *kindFlag != "" {
		name = *kindFlag
	}
	if _, known := artifacts()[name]; !known && name != "all" {
		return fmt.Errorf("unknown artifact %q (have: %s)", name, strings.Join(artifactNames(), " "))
	}

	// closeOut finalizes the -out/-resume stream; encode, sync, and close
	// errors all fail the run (a silently truncated results file must not
	// exit 0).
	closeOut := func() error { return nil }
	outPath := *outFlag
	var outFile *os.File
	switch {
	case *outFlag != "":
		f, err := os.Create(*outFlag)
		if err != nil {
			return err
		}
		outFile = f
	case *resumeFlag != "":
		if name == "all" {
			return fmt.Errorf("-resume needs the single artifact the file was produced by, not \"all\"")
		}
		outPath = *resumeFlag
		f, err := os.OpenFile(*resumeFlag, os.O_RDWR, 0)
		if err != nil {
			return err
		}
		cp, err := hbmrd.ResumeFrom(f)
		if err != nil {
			f.Close()
			return fmt.Errorf("resuming %s: %w", *resumeFlag, err)
		}
		fmt.Fprintf(os.Stderr, "hbmrd: resuming %s sweep from %d checkpointed records\n",
			cp.Header.Kind, cp.Records())
		c.resume = cp
		outFile = f
	}
	if outFile != nil {
		c.out = hbmrd.NewJSONLFileSink(outFile)
		closeOut = func() error {
			err := c.out.Err()
			if serr := outFile.Sync(); err == nil {
				err = serr
			}
			if cerr := outFile.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("writing %s: %w", outPath, err)
			}
			return nil
		}
	}

	// -trace-out is observability, not results: trace spans are strictly
	// out-of-band of the -out record stream, and a trace write failure
	// warns instead of failing the run.
	closeTrace := func() {}
	if *traceFlag != "" {
		tf, err := os.Create(*traceFlag)
		if err != nil {
			return err
		}
		c.tracer = hbmrd.NewTracer(tf)
		closeTrace = func() {
			err := c.tracer.Err()
			if cerr := tf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "hbmrd: writing trace %s: %v\n", *traceFlag, err)
			}
		}
	}

	err := runArtifacts(ctx, name, c)
	closeTrace()
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	return err
}

// runQuery is the `hbmrd query` verb: ingest completed -out files into a
// local sweep store, list its catalog, and run aggregation specs against
// it through the same content-addressed query engine hbmrdd serves.
func runQuery(args []string) error {
	fs := flag.NewFlagSet("hbmrd query", flag.ContinueOnError)
	storeDir := fs.String("store", "hbmrd-store", "sweep store directory")
	ingest := fs.String("ingest", "", "finalize a completed -out JSONL file into the store")
	specJSON := fs.String("spec", "", "aggregation query spec (JSON; see README for the grammar)")
	figure := fs.String("figure", "", "predefined figure spec (fig4 fig5 fig6 fig7 fig9 fig13 fig14 fig15 fig16 figrank figvrd figcoldist); needs -sweep")
	sweep := fs.String("sweep", "", "sweep fingerprint for -figure")
	kind := fs.String("kind", "", "filter the catalog listing by experiment kind")
	format := fs.String("format", "table", "query output format: table, csv, or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: hbmrd query [-store DIR] [-ingest FILE | -spec JSON | -figure FIG -sweep FP] [-format table|csv|json]")
	}
	st, err := hbmrd.OpenSweepStore(*storeDir)
	if err != nil {
		return err
	}

	if *ingest != "" {
		meta, err := hbmrd.IngestSweep(st, *ingest)
		if err != nil {
			return err
		}
		fmt.Printf("ingested %s: %s sweep, %d cells, %d records, %d bytes\n",
			meta.Fingerprint, meta.Kind, meta.Cells, meta.Records, meta.Bytes)
		return nil
	}

	var spec hbmrd.QuerySpec
	switch {
	case *specJSON != "":
		if err := json.Unmarshal([]byte(*specJSON), &spec); err != nil {
			return fmt.Errorf("bad -spec: %w", err)
		}
	case *figure != "":
		if *sweep == "" {
			return fmt.Errorf("-figure needs -sweep FINGERPRINT (run `hbmrd query` to list the catalog)")
		}
		spec, err = hbmrd.QueryFigureSpec(*figure, *sweep)
		if err != nil {
			return err
		}
	default:
		// No query: list the catalog.
		cat, err := hbmrd.NewSweepCatalog(st)
		if err != nil {
			return err
		}
		entries := cat.List()
		if *kind != "" {
			entries = cat.Find(hbmrd.CatalogByKind(*kind))
		}
		if len(entries) == 0 {
			fmt.Printf("store %s holds no finished sweeps\n", *storeDir)
			return nil
		}
		for _, m := range entries {
			line := fmt.Sprintf("%s  %-12s %6d cells %8d records %10d bytes", m.Fingerprint, m.Kind, m.Cells, m.Records, m.Bytes)
			if m.Geometry != "" {
				line += "  " + m.Geometry
			}
			if len(m.Chips) > 0 {
				line += fmt.Sprintf("  chips %v", m.Chips)
			}
			fmt.Println(line)
		}
		return nil
	}

	eng := hbmrd.NewQueryEngine(st)
	res, err := eng.Run(spec)
	if err != nil {
		return err
	}
	switch res.Source {
	case hbmrd.QuerySourceCache:
		fmt.Fprintln(os.Stderr, "hbmrd: query served from the derived-result cache")
	case hbmrd.QuerySourceJSONL:
		fmt.Fprintln(os.Stderr, "hbmrd: query computed from raw JSONL records (columnar artifact backfilled)")
	}
	switch *format {
	case "json":
		_, err = os.Stdout.Write(res.JSON)
	case "csv":
		_, err = fmt.Print(res.Aggregate.CSV())
	case "table":
		_, err = fmt.Print(hbmrd.RenderAggregate(&res.Aggregate))
	default:
		err = fmt.Errorf("unknown -format %q (have table, csv, json)", *format)
	}
	return err
}

func runArtifacts(ctx context.Context, name string, c runCtx) error {
	if name == "all" {
		for _, a := range artifactNames() {
			if a == "all" {
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runOne(ctx, a, c); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(ctx, name, c)
}

func runOne(ctx context.Context, name string, c runCtx) error {
	fn, ok := artifacts()[name]
	if !ok {
		return fmt.Errorf("unknown artifact %q (have: %s)", name, strings.Join(artifactNames(), " "))
	}
	start := time.Now()
	out, err := fn(ctx, c.labelled(name))
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("==== %s (%.1fs) ====\n%s\n", name, time.Since(start).Seconds(), out)
	return nil
}

type artifactFn func(ctx context.Context, c runCtx) (string, error)

func artifactNames() []string {
	m := artifacts()
	names := make([]string, 0, len(m)+1)
	for n := range m {
		names = append(names, n)
	}
	names = append(names, "all")
	sort.Strings(names)
	return names
}

func (c runCtx) fleet(defaultChips []int) ([]*hbmrd.TestChip, error) {
	chips := c.chips
	if len(chips) == 0 {
		chips = defaultChips
	}
	return hbmrd.NewFleet(chips, c.chipOpts()...)
}

// chipOpts returns the chip-construction options the command-line flags
// imply (currently just the geometry preset).
func (c runCtx) chipOpts() []hbmrd.ChipOption {
	if !c.geomSet {
		return nil
	}
	return []hbmrd.ChipOption{hbmrd.WithGeometry(c.geom)}
}

// labelled stamps the artifact name into the progress sink label.
func (c runCtx) labelled(name string) runCtx {
	c.label = name
	return c
}

// runOpts translates the execution flags into sweep options for one
// runner invocation.
func (c runCtx) runOpts() []hbmrd.RunOption {
	var opts []hbmrd.RunOption
	if c.jobs > 0 {
		opts = append(opts, hbmrd.WithJobs(c.jobs))
	}
	var sinks []hbmrd.Sink
	if c.progress {
		sinks = append(sinks, hbmrd.NewProgressSink(os.Stderr, c.label))
	}
	if c.out != nil {
		sinks = append(sinks, c.out)
	}
	switch len(sinks) {
	case 0:
	case 1:
		opts = append(opts, hbmrd.WithSink(sinks[0]))
	default:
		opts = append(opts, hbmrd.WithSink(hbmrd.MultiSink(sinks...)))
	}
	if c.resume != nil {
		opts = append(opts, hbmrd.WithResume(c.resume))
	}
	if c.shard != nil {
		opts = append(opts, hbmrd.WithShard(*c.shard))
	}
	if c.tracer != nil {
		opts = append(opts, hbmrd.WithTracer(c.tracer))
	}
	return opts
}

func (c runCtx) pick(demo, full int) int {
	if c.full {
		return full
	}
	return demo
}

func artifacts() map[string]artifactFn {
	return map[string]artifactFn{
		"geometries": func(context.Context, runCtx) (string, error) {
			var b strings.Builder
			fmt.Fprintf(&b, "%-18s %3s %3s %3s %5s %6s %8s %8s %6s %7s %5s  %s\n",
				"preset", "ch", "pc", "rk", "banks", "rows", "rowB", "size",
				"Gbps", "tRC/ns", "ACTs", "description")
			for _, p := range hbmrd.Presets() {
				g := p.Geometry
				rate := "-"
				if p.DataRateMbps > 0 {
					rate = fmt.Sprintf("%.1f", float64(p.DataRateMbps)/1000)
				}
				fmt.Fprintf(&b, "%-18s %3d %3d %3d %5d %6d %8d %7dM %6s %7.1f %5d  %s\n",
					p.Name, g.Channels, g.PseudoChannels, g.NumRanks(), g.Banks, g.Rows,
					g.RowBytes, g.TotalBytes()>>20, rate,
					float64(p.Timing.TRC)/float64(hbmrd.NS),
					p.Timing.ActBudgetPerREFI(), p.Description)
			}
			return b.String(), nil
		},

		"table1": func(context.Context, runCtx) (string, error) { return hbmrd.RenderTable1(), nil },
		"table2": func(context.Context, runCtx) (string, error) { return hbmrd.RenderTable2(), nil },

		"fig3": func(_ context.Context, c runCtx) (string, error) {
			dur := 2.0 * 3600
			if c.full {
				dur = 24 * 3600 // the paper's 24-hour window
			}
			names, traces, err := hbmrd.SimulateTemperatures(dur, 5)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig3(names, traces), nil
		},

		"fig4": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet(hbmrd.AllChips())
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunBERContext(ctx, fleet, hbmrd.BERConfig{
				Rows: hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(48, 16384)),
				Reps: c.pick(2, 5),
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig4(recs), nil
		},

		"fig5": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet(hbmrd.AllChips())
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunHCFirstContext(ctx, fleet, hbmrd.HCFirstConfig{
				Rows:    hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(12, 3072)),
				Pseudos: pick2(c.full),
				Reps:    c.pick(2, 5),
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig5(recs), nil
		},

		"fig6": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet(hbmrd.AllChips())
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunBERContext(ctx, fleet, hbmrd.BERConfig{
				Rows: hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(32, 16384)),
				Reps: c.pick(2, 5),
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig6(recs), nil
		},

		"fig7": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet(hbmrd.AllChips())
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunHCFirstContext(ctx, fleet, hbmrd.HCFirstConfig{
				Rows: hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(10, 3072)),
				Reps: c.pick(2, 5),
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig7(recs), nil
		},

		"fig8": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet([]int{0})
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunBERContext(ctx, fleet, hbmrd.BERConfig{
				Channels: []int{0, 1, 2},
				Rows:     hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(256, 16384)),
				Reps:     1,
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			// Discover the subarray boundary around the first 832/768 seam
			// with single-sided hammering (footnote 4's methodology).
			bounds, err := hbmrd.ScanSubarrayBoundaries(fleet[0], hbmrd.SubarrayScanConfig{
				FromRow: 780, ToRow: 880,
			})
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig8CSV(recs, bounds), nil
		},

		"fig9": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet([]int{0}) // the paper's Fig 9 is Chip 0
			if err != nil {
				return "", err
			}
			// Sweep every bank and pseudo channel the chip actually has
			// (16 banks on the paper's HBM2 part; up to 64 across the ranks
			// of the HBM3 multi-rank parts).
			g := fleet[0].Chip.Geometry()
			banks := make([]int, g.BanksPerPC())
			for i := range banks {
				banks[i] = i
			}
			recs, err := hbmrd.RunBERContext(ctx, fleet, hbmrd.BERConfig{
				Pseudos: channelsN(g.PseudoChannels),
				Banks:   banks,
				Rows:    hbmrd.RegionRowsIn(g, c.pick(4, 100)),
				Reps:    c.pick(1, 5),
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig9(recs), nil
		},

		"fig10": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet([]int{2, 3, 4, 5}) // the same-age chips
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunAgingContext(ctx, fleet, hbmrd.AgingConfig{
				BER: hbmrd.BERConfig{
					Rows: hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(64, 1024)),
					Reps: 1,
				},
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig10(hbmrd.SummarizeAging(recs)), nil
		},

		"fig11": func(ctx context.Context, c runCtx) (string, error) {
			recs, err := runHCNth(ctx, c)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig11(recs), nil
		},

		"fig12": func(ctx context.Context, c runCtx) (string, error) {
			recs, err := runHCNth(ctx, c)
			if err != nil {
				return "", err
			}
			st, err := hbmrd.ComputeFig12(recs)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig12(st), nil
		},

		"fig13": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet(hbmrd.AllChips())
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunVariabilityContext(ctx, fleet, hbmrd.VariabilityConfig{
				Rows:       hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(8, 768)),
				Iterations: c.pick(20, 50),
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig13(recs), nil
		},

		"fig14": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet(hbmrd.AllChips())
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunRowPressBERContext(ctx, fleet, hbmrd.RowPressBERConfig{
				Channels: channelsN(c.pick(2, 8)),
				Rows:     hbmrd.RegionRowsIn(fleet[0].Chip.Geometry(), c.pick(4, 128)),
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig14(recs), nil
		},

		"fig15": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet(hbmrd.AllChips())
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunRowPressHCContext(ctx, fleet, hbmrd.RowPressHCConfig{
				Channels: channelsN(c.pick(1, 3)),
				Rows:     hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(8, 384)),
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig15(recs), nil
		},

		"fig16": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet([]int{0}) // the paper's TRR chip
			if err != nil {
				return "", err
			}
			cfg := hbmrd.BypassConfig{
				Victims: hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(4, 32)),
				AggActs: []int{18, 26, 34},
			}
			if !c.full {
				cfg.Windows = 8205 // one refresh window instead of two
			}
			if c.full {
				cfg.AggActs = []int{18, 20, 22, 24, 26, 28, 30, 32, 34}
			}
			recs, err := hbmrd.RunBypassContext(ctx, fleet, cfg, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig16(recs), nil
		},

		"fig17": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet([]int{4}) // the paper's Fig 17 is Chip 4
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunBERContext(ctx, fleet, hbmrd.BERConfig{
				Channels:     channelsN(c.pick(2, 8)),
				Rows:         hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(96, 16384)),
				Reps:         1,
				CollectMasks: true,
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			hists, err := hbmrd.WordFlipHistograms(recs)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderFig17(hists), nil
		},

		"attack": func(_ context.Context, c runCtx) (string, error) {
			budget := 40_000
			target := c.pick(16, 64)
			chipA, err := hbmrd.NewChip(0, append(c.chipOpts(), hbmrd.WithIdentityMapping())...)
			if err != nil {
				return "", err
			}
			rows := hbmrd.SampleRowsIn(chipA.Geometry(), c.pick(96, 256))
			naive, err := hbmrd.RunTemplating(chipA, hbmrd.TemplateConfig{
				Strategy: hbmrd.NaiveScan, TargetFlips: target, HammerBudget: budget, Rows: rows,
			})
			if err != nil {
				return "", err
			}
			chipB, err := hbmrd.NewChip(0, append(c.chipOpts(), hbmrd.WithIdentityMapping())...)
			if err != nil {
				return "", err
			}
			targeted, err := hbmrd.RunTemplating(chipB, hbmrd.TemplateConfig{
				Strategy: hbmrd.ChannelTargeted, TargetFlips: target, HammerBudget: budget, Rows: rows,
			})
			if err != nil {
				return "", err
			}
			return hbmrd.RenderTemplating(naive, targeted), nil
		},

		"defense": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet([]int{4})
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunHCFirstContext(ctx, fleet, hbmrd.HCFirstConfig{
				Rows: hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(8, 64)),
				Reps: c.pick(2, 5),
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			rep, err := hbmrd.CompareDefense(hbmrd.DefenseRegionsByChannel(recs), hbmrd.DefenseConfig{})
			if err != nil {
				return "", err
			}
			return hbmrd.RenderDefense(rep), nil
		},

		"vrd": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet(hbmrd.AllChips())
			if err != nil {
				return "", err
			}
			recs, err := hbmrd.RunVRDContext(ctx, fleet, hbmrd.VRDConfig{
				Rows:   hbmrd.SampleRowsIn(fleet[0].Chip.Geometry(), c.pick(6, 768)),
				Trials: c.pick(5, 20),
			}, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return renderVRD(recs), nil
		},

		"coldist": func(ctx context.Context, c runCtx) (string, error) {
			fleet, err := c.fleet(hbmrd.AllChips())
			if err != nil {
				return "", err
			}
			cfg := hbmrd.ColDisturbConfig{}
			if c.full {
				// More aggressor rows than the default four, clamped so the
				// deepest default distance (8) keeps its victim in range.
				g := fleet[0].Chip.Geometry()
				for _, r := range hbmrd.SampleRowsIn(g, 64) {
					if r < 8 {
						r = 8
					}
					if r > g.Rows-9 {
						r = g.Rows - 9
					}
					cfg.AggRows = append(cfg.AggRows, r)
				}
			}
			recs, err := hbmrd.RunColDisturbContext(ctx, fleet, cfg, c.runOpts()...)
			if err != nil {
				return "", err
			}
			return renderColDist(recs), nil
		},

		"trr": func(_ context.Context, c runCtx) (string, error) {
			chip, err := hbmrd.NewChip(0, c.chipOpts()...)
			if err != nil {
				return "", err
			}
			f, err := hbmrd.UncoverTRR(chip)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderTRRFindings(f), nil
		},

		"retention": func(_ context.Context, c runCtx) (string, error) {
			// The §6 baselines: the three experiment durations that exceed
			// the 32 ms refresh window (34.8 ms, 1.17 s, 10.53 s).
			chip, err := hbmrd.NewChip(3, c.chipOpts()...)
			if err != nil {
				return "", err
			}
			waits := []hbmrd.TimePS{
				34_800_000_000, 1_170 * hbmrd.MS, 10_530 * hbmrd.MS,
			}
			bers, err := hbmrd.MeasureRetentionBaselines(chip, 0, c.pick(48, 384), waits)
			if err != nil {
				return "", err
			}
			return hbmrd.RenderRetention(waits, bers), nil
		},
	}
}

func runHCNth(ctx context.Context, c runCtx) ([]hbmrd.HCNthRecord, error) {
	fleet, err := c.fleet(hbmrd.AllChips())
	if err != nil {
		return nil, err
	}
	cfg := hbmrd.HCNthConfig{
		Rows: hbmrd.RegionRowsIn(fleet[0].Chip.Geometry(), c.pick(3, 32)),
	}
	if !c.full {
		cfg.Patterns = []hbmrd.Pattern{hbmrd.Rowstripe0, hbmrd.Checkered0}
	}
	return hbmrd.RunHCNthContext(ctx, fleet, cfg, c.runOpts()...)
}

// renderVRD prints one cell per line: the HCfirst distribution summary
// across that cell's repeated trials.
func renderVRD(recs []hbmrd.VRDRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %3s %3s %3s %6s %6s %8s %8s %10s %8s %6s\n",
		"chip", "ch", "pc", "bk", "row", "found", "minHC", "maxHC", "meanHC", "pHC", "ratio")
	for _, r := range recs {
		fmt.Fprintf(&b, "%4d %3d %3d %3d %6d %3d/%-2d %8d %8d %10.1f %8d %6.3f\n",
			r.Chip, r.Channel, r.Pseudo, r.Bank, r.Row, r.Found, r.Trials,
			r.MinHC, r.MaxHC, r.MeanHC, r.PHC, r.Ratio())
	}
	return b.String()
}

// renderColDist prints one (aggressor, distance, stripe) probe per line.
func renderColDist(recs []hbmrd.ColDisturbRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %6s %5s %7s %8s %7s %13s\n",
		"chip", "agg", "dist", "stripe", "reads", "flips", "first-disturb")
	for _, r := range recs {
		first := "-"
		if r.Found {
			first = strconv.Itoa(r.FirstDisturb)
		}
		fmt.Fprintf(&b, "%4d %6d %+5d %7d %8d %7d %13s\n",
			r.Chip, r.Row, r.Distance, r.Stripe, r.Reads, r.Flips, first)
	}
	return b.String()
}

func channelsN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func pick2(full bool) []int {
	if full {
		return []int{0, 1}
	}
	return []int{0}
}
